"""Generic participant engine.

Drives the participant side of PrN, PrA and PrC — which differ only in
the :class:`~repro.protocols.base.ParticipantSpec` forcing/ack table —
on top of the site's local transaction manager:

* ``PREPARE`` → force the prepared record and vote Yes, or vote No if
  the subtransaction already aborted (or never existed) at this site;
* ``COMMIT``/``ABORT`` (a decision or an inquiry reply — participants
  treat them identically) → enforce via the local TM with the spec's
  forcing discipline, acknowledge if the spec says so, then forget;
* a prepared participant that waits too long sends ``INQUIRY`` to its
  coordinator and retries until an answer arrives (the paper's
  timeout-driven recovery);
* footnote 5: a decision for a transaction this site has no memory of
  is acknowledged blindly — it must have been enforced and forgotten.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.events import Outcome
from repro.errors import TransactionError
from repro.db.local_tm import LocalTransactionManager, TxnStatus
from repro.net.message import Message
from repro.net.network import Network
from repro.protocols.base import (
    ACK,
    CL_CHECKPOINT,
    CL_RECOVER,
    INQUIRY,
    ParticipantSpec,
    TimeoutConfig,
    VOTE_NO,
    VOTE_READ,
    VOTE_YES,
    outcome_of_kind,
)
from repro.sim.kernel import Simulator, Timer
from repro.storage.log_records import RecordType, prepared_record
from repro.storage.protocol_table import ProtocolTable
from repro.storage.stable_log import StableLog


class ParticipantEntry:
    """Protocol-table entry for one subtransaction at a participant."""

    __slots__ = ("txn_id", "coordinator", "inquiry_timer", "active_timer", "epoch")

    def __init__(self, txn_id: str, coordinator: str, epoch: int) -> None:
        self.txn_id = txn_id
        self.coordinator = coordinator
        self.inquiry_timer: Optional[Timer] = None
        self.active_timer: Optional[Timer] = None
        self.epoch = epoch

    def cancel_timers(self) -> None:
        for timer in (self.inquiry_timer, self.active_timer):
            if timer is not None:
                timer.cancel()


class ParticipantEngine:
    """Commit-protocol participant for one site."""

    def __init__(
        self,
        sim: Simulator,
        site_id: str,
        spec: ParticipantSpec,
        tm: LocalTransactionManager,
        log: StableLog,
        network: Network,
        timeouts: Optional[TimeoutConfig] = None,
        read_only_optimization: bool = True,
    ) -> None:
        self._sim = sim
        self._site_id = site_id
        self._spec = spec
        self._tm = tm
        self._log = log
        self._network = network
        self._timeouts = timeouts if timeouts is not None else TimeoutConfig()
        self._read_only_optimization = read_only_optimization
        self.table = ProtocolTable(sim, site_id, role="participant")
        self._gc_pending: dict[str, Optional[RecordType]] = {}
        self._epoch = 0
        # Counters used by the experiments.
        self.inquiries_sent = 0
        self.blind_acks = 0
        self.decision_conflicts = 0
        self.read_votes = 0

    @property
    def spec(self) -> ParticipantSpec:
        return self._spec

    @property
    def protocol(self) -> str:
        return self._spec.name

    @property
    def gc_pending(self) -> dict[str, Optional[RecordType]]:
        return dict(self._gc_pending)

    # -- local work --------------------------------------------------------

    def begin_work(self, txn_id: str, coordinator: str) -> None:
        """Register an executing subtransaction with its coordinator."""
        self._tm.begin(txn_id, coordinator)
        entry = ParticipantEntry(txn_id, coordinator, self._epoch)
        self.table.insert(txn_id, entry)
        if self._spec.implicitly_prepared:
            # IYV: executing work *is* the promise. Force the prepared
            # record up front (updates are forced per operation), so a
            # crash leaves the subtransaction in doubt, never lost.
            # Nothing is sent on its stability, so no callback is
            # needed; a group-commit log may coalesce it.
            self._log.force_append_async(prepared_record(txn_id, coordinator))
            self._sim.record(
                self._site_id, "db", "implicitly_prepared", txn=txn_id
            )
        # For explicit voters: a participant that never sees a PREPARE
        # (lost message, or an abort it was excluded from) unilaterally
        # aborts when the timer fires — it has made no promise yet. An
        # implicitly prepared participant instead starts inquiring.
        entry.active_timer = self._sim.set_timer(
            self._timeouts.active_timeout,
            self._guarded(txn_id, self._on_active_timeout),
            label=f"active-timeout {txn_id}",
        )

    def unilateral_abort(self, txn_id: str) -> None:
        """Abort a not-yet-prepared subtransaction locally.

        Used both for execution failures (lock denials) and for the
        active timeout. The coordinator learns of it through a No vote
        when (if) it asks us to prepare. Implicitly prepared (IYV)
        participants have already promised and must not call this; the
        MDBS layer routes their execution failures to a coordinator-side
        abort instead.
        """
        if self._spec.implicitly_prepared:
            raise TransactionError(
                f"site {self._site_id!r} runs {self._spec.name}: an "
                f"implicitly prepared participant cannot abort unilaterally"
            )
        txn = self._tm.transaction(txn_id)
        if txn is None or txn.status is not TxnStatus.ACTIVE:
            return
        self._tm.abort(txn_id, force_decision=False)
        entry = self.table.get(txn_id)
        if entry is not None:
            entry.cancel_timers()
        self._forget(txn_id, Outcome.ABORT)

    # -- message handlers ------------------------------------------------------

    def on_prepare(self, message: Message) -> None:
        """Vote on a PREPARE request."""
        txn_id = message.txn_id
        coordinator = message.sender
        txn = self._tm.transaction(txn_id)
        if txn is None or txn.status is not TxnStatus.ACTIVE:
            # Unilaterally aborted (or never executed) here: vote No.
            self._send(VOTE_NO, coordinator, txn_id)
            return
        if self._read_only_optimization and self._tm.is_read_only(txn_id):
            # Read-only optimization: vote READ, release everything and
            # drop out — no prepared force, no decision, no ack.
            entry = self.table.get(txn_id)
            if entry is not None:
                entry.cancel_timers()
            self._tm.finish_read_only(txn_id)
            self.table.delete(txn_id)
            self.read_votes += 1
            self._send(VOTE_READ, coordinator, txn_id)
            return
        entry = self.table.get(txn_id)
        if entry is None:
            entry = ParticipantEntry(txn_id, coordinator, self._epoch)
            self.table.insert(txn_id, entry)
        entry.coordinator = coordinator
        if entry.active_timer is not None:
            entry.active_timer.cancel()
        # Force-before-send: the Yes vote goes out from the prepared
        # force's completion — immediately on a synchronous log, at
        # window close on a group-commit log. The guard drops the vote
        # if the transaction is gone by then (crash, or an abort that
        # arrived while the window was open).
        if not self._tm.prepare(
            txn_id, on_stable=self._guarded(txn_id, self._cast_yes_vote)
        ):
            self._send(VOTE_NO, coordinator, txn_id)

    def _cast_yes_vote(self, entry: ParticipantEntry) -> None:
        """Prepared record is stable: send VOTE_YES and start inquiring."""
        txn = self._tm.transaction(entry.txn_id)
        if txn is None or txn.status is not TxnStatus.PREPARED:
            return
        if self._spec.logless:
            # Coordinator log: piggyback the redo records on the vote;
            # the coordinator's decision force makes them durable.
            payload = [[k, b, a] for k, b, a in txn.updates]
            self._send(VOTE_YES, entry.coordinator, entry.txn_id, updates=payload)
        else:
            self._send(VOTE_YES, entry.coordinator, entry.txn_id)
        entry.inquiry_timer = self._sim.set_timer(
            self._timeouts.inquiry_timeout,
            self._guarded(entry.txn_id, self._on_inquiry_timeout),
            label=f"inquiry-timeout {entry.txn_id}",
        )

    def on_decision(self, message: Message) -> None:
        """Enforce a COMMIT/ABORT decision (or inquiry reply)."""
        txn_id = message.txn_id
        outcome = outcome_of_kind(message.kind)
        handling = self._spec.handling(outcome)
        txn = self._tm.transaction(txn_id)
        if txn is None:
            # Footnote 5: no memory means already enforced and
            # forgotten — just (re-)acknowledge if the protocol acks.
            if handling.acknowledge:
                self.blind_acks += 1
                if self._spec.logless:
                    # A log-less site that lost a prepared subtransaction
                    # enforces by oblivion: an abort needs no local work
                    # (the volatile updates died with the crash) and a
                    # commit's redo arrives via CL_REDO. Record the
                    # enforcement so the run history is complete.
                    self._sim.record(
                        self._site_id,
                        "db",
                        outcome.value,
                        txn=txn_id,
                        blind=True,
                    )
                self._send(ACK, message.sender, txn_id, decision=outcome.value)
            return
        if txn.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED):
            already = (
                Outcome.COMMIT if txn.status is TxnStatus.COMMITTED else Outcome.ABORT
            )
            if already is not outcome:
                # A contradicting decision reached an already-enforced
                # site: record it; the atomicity checker surfaces it.
                self.decision_conflicts += 1
                self._sim.record(
                    self._site_id,
                    "protocol",
                    "decision_conflict",
                    txn=txn_id,
                    enforced=already.value,
                    received=outcome.value,
                )
                return
            if handling.acknowledge and txn.decision_stable:
                # Re-ack only once the decision record is stable: while
                # it sits in an open group-commit window, the original
                # enforcement's completion will ack when it closes (an
                # early re-ack could let the coordinator forget a
                # decision a crash is about to un-enforce). Every
                # acking spec forces its decision record or is logless,
                # so a stable flag is guaranteed to arrive.
                self._send(ACK, message.sender, txn_id, decision=outcome.value)
            return
        entry = self.table.get(txn_id)
        sender = message.sender
        epoch = self._epoch

        def finish() -> None:
            # Decision record is as durable as the spec demands: ack
            # (force-before-send) and forget. Dropped on crash via both
            # the epoch guard and the group-commit callback discard.
            if epoch != self._epoch:
                return
            if handling.acknowledge:
                self._send(ACK, sender, txn_id, decision=outcome.value)
            self._forget(txn_id, outcome)

        try:
            if outcome is Outcome.COMMIT:
                self._tm.commit(
                    txn_id,
                    force_decision=handling.force_record,
                    on_stable=finish,
                )
            else:
                self._tm.abort(
                    txn_id,
                    force_decision=handling.force_record,
                    on_stable=finish,
                )
        except TransactionError:
            self.decision_conflicts += 1
            return
        if entry is not None:
            entry.cancel_timers()

    # -- coordinator-log support ---------------------------------------------------

    def on_cl_redo(self, message: Message) -> None:
        """Install redo state pulled from a coordinator (CL recovery).

        Each entry is a committed transaction this site enforced (or
        should have enforced) before it crashed; applying the
        after-images *is* the enforcement, and the coordinator may
        still be waiting for the commit ack, so one is sent per entry.
        """
        for item in message.get("txns", []):
            txn_id = item["txn"]
            updates = [tuple(u) for u in item["updates"]]
            self._tm.apply_redo(txn_id, updates)
            self._send(ACK, message.sender, txn_id, decision="commit")

    def request_cl_recovery(self, coordinators: list[str]) -> None:
        """Ask every coordinator for this site's redo state (restart)."""
        for coordinator in coordinators:
            self._send(CL_RECOVER, coordinator, "")

    def announce_checkpoint(self, coordinators: list[str]) -> None:
        """Tell the coordinators a local checkpoint completed.

        A checkpoint makes every previously enforced commit durable
        here, which is what licenses the coordinators to garbage
        collect the redo records they retained for this site.
        """
        for coordinator in coordinators:
            self._send(CL_CHECKPOINT, coordinator, "")

    # -- crash / recovery ----------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile participant state."""
        self._epoch += 1
        for entry in self.table.entries().values():
            entry.cancel_timers()
        self.table.clear_volatile()

    def recover(self, in_doubt: dict[str, str]) -> None:
        """Resume protocol duty for re-adopted in-doubt transactions.

        Args:
            in_doubt: txn id → coordinator id, from local log analysis.
        """
        for txn_id, coordinator in sorted(in_doubt.items()):
            entry = ParticipantEntry(txn_id, coordinator, self._epoch)
            self.table.insert(txn_id, entry)
            self._send_inquiry(entry)

    def requeue_decided_gc(
        self,
        committed: set[str],
        aborted: set[str],
        implicitly_aborted: set[str] = frozenset(),
    ) -> None:
        """Re-queue decided transactions found in the log at restart.

        ``_gc_pending`` is volatile: a crash between forgetting a
        decided transaction and the GC sweep would otherwise strand its
        records in the log forever (a freshly booted process starts
        with an empty queue — only the simulator's in-place
        ``recover()`` happened to keep the old dict alive). Restart
        analysis already proves the decision record is stable, which is
        exactly the cover the sweep waits for; if the coordinator is
        still owed an ack it will resend the decision and get a blind
        re-ack (footnote 5), so forgetting here is safe.

        ``implicitly_aborted`` shapes (UPDATE records, no PREPARED —
        active at the crash, aborted by the local hidden presumption)
        never get a decision record: a later duplicate decision from
        the coordinator is blind-acked without logging. Redo only ever
        replays *committed* transactions' updates, and this transaction
        can never become committed, so its records collect with no
        cover at all.
        """
        if self._spec.logless:
            return
        for txn_id in sorted(committed):
            self._gc_pending.setdefault(txn_id, RecordType.COMMIT)
        for txn_id in sorted(aborted):
            self._gc_pending.setdefault(txn_id, RecordType.ABORT)
        for txn_id in sorted(implicitly_aborted):
            self._gc_pending.setdefault(txn_id, None)

    # -- garbage collection ----------------------------------------------------------

    def collect_garbage(self) -> int:
        """GC records of forgotten txns whose decision record is stable."""
        collected = 0
        for txn_id, cover in list(self._gc_pending.items()):
            if cover is not None and not self._cover_is_stable(txn_id, cover):
                continue
            self._log.garbage_collect(txn_id)
            del self._gc_pending[txn_id]
            collected += 1
        return collected

    def _cover_is_stable(self, txn_id: str, cover: RecordType) -> bool:
        for record in self._log.records_for(txn_id):
            if record.type is cover and record.get("by", "participant") == "participant":
                return True
        return False

    # -- internals -------------------------------------------------------------------

    def _forget(self, txn_id: str, outcome: Outcome) -> None:
        """Forget the transaction; queue its records for GC.

        GC must wait until the decision record is stable — collecting
        the prepared/update records while the (possibly non-forced)
        decision record is still in the log buffer would lose a
        committed transaction across a crash.
        """
        self.table.delete(txn_id)
        txn = self._tm.transaction(txn_id)
        if txn is not None and not self._spec.logless:
            cover = (
                RecordType.COMMIT if outcome is Outcome.COMMIT else RecordType.ABORT
            )
            self._gc_pending[txn_id] = cover
        # Volatile TM state can go now; log records go via the GC sweep.
        self._tm.drop_volatile(txn_id)

    def _on_active_timeout(self, entry: ParticipantEntry) -> None:
        txn = self._tm.transaction(entry.txn_id)
        if txn is None:
            return
        self._sim.record(
            self._site_id, "protocol", "active_timeout", txn=entry.txn_id
        )
        if self._spec.implicitly_prepared:
            # IYV: the decision is late; start inquiring instead of
            # aborting — the promise has already been made.
            if txn.status is TxnStatus.ACTIVE:
                self._send_inquiry(entry)
            return
        self.unilateral_abort(entry.txn_id)

    def _on_inquiry_timeout(self, entry: ParticipantEntry) -> None:
        txn = self._tm.transaction(entry.txn_id)
        if txn is None:
            return
        in_doubt = txn.status is TxnStatus.PREPARED or (
            self._spec.implicitly_prepared and txn.status is TxnStatus.ACTIVE
        )
        if not in_doubt:
            return
        self._send_inquiry(entry)

    def _send_inquiry(self, entry: ParticipantEntry) -> None:
        self.inquiries_sent += 1
        self._send(INQUIRY, entry.coordinator, entry.txn_id)
        entry.inquiry_timer = self._sim.set_timer(
            self._timeouts.inquiry_retry,
            self._guarded(entry.txn_id, self._on_inquiry_timeout),
            label=f"inquiry-retry {entry.txn_id}",
        )

    def _send(self, kind: str, receiver: str, txn_id: str, **payload) -> None:
        self._network.send(
            Message(kind, self._site_id, receiver, txn_id, dict(payload))
        )

    def _guarded(
        self, txn_id: str, handler: Callable[[ParticipantEntry], None]
    ) -> Callable[[], None]:
        epoch = self._epoch

        def fire() -> None:
            if epoch != self._epoch:
                return
            entry = self.table.get(txn_id)
            if entry is None or entry.epoch != epoch:
                return
            handler(entry)

        return fire
