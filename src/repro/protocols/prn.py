"""Presumed Nothing (PrN) — the basic two-phase commit protocol.

Figure 2 of the paper. The coordinator treats commits and aborts
uniformly: it force-writes the decision record, sends the decision to
every (yes-voting) participant, waits for *all* acknowledgements and
then writes a non-forced end record.

PrN's *hidden presumption*: after a coordinator failure, transactions
with no decision record are considered aborted, so an inquiry about an
unknown transaction is answered **abort**.
"""

from __future__ import annotations

from repro.core.events import Outcome
from repro.protocols.base import CoordinatorPolicy


class PrNCoordinator(CoordinatorPolicy):
    """Coordinator-side presumed-nothing policy."""

    name = "PrN"

    def writes_initiation(self) -> bool:
        return False

    def forces_decision_record(self, outcome: Outcome) -> bool:
        # PrN force-writes both commit and abort decisions.
        return True

    def writes_end(self, outcome: Outcome) -> bool:
        return True

    def ack_expected(self, participant_protocol: str, outcome: Outcome) -> bool:
        # All participants acknowledge both decisions.
        return True

    def respond_unknown(self, inquirer_protocol: str) -> Outcome:
        # The hidden presumption of basic 2PC.
        return Outcome.ABORT
