"""Presumed Abort (PrA).

Figure 3 of the paper. Aborts are free at the coordinator: no log
record is written, no acknowledgements are awaited, and the transaction
is forgotten the moment the abort decision is made. An inquiry about a
transaction the coordinator does not remember is answered **abort** —
the explicit abort presumption.

Commits still pay the full PrN price: a forced commit record, acks from
every participant, then a non-forced end record.
"""

from __future__ import annotations

from repro.core.events import Outcome
from repro.protocols.base import CoordinatorPolicy


class PrACoordinator(CoordinatorPolicy):
    """Coordinator-side presumed-abort policy."""

    name = "PrA"

    def writes_initiation(self) -> bool:
        return False

    def forces_decision_record(self, outcome: Outcome) -> bool:
        # Only commit decisions are logged (forced); aborts write nothing.
        return outcome is Outcome.COMMIT

    def writes_end(self, outcome: Outcome) -> bool:
        return outcome is Outcome.COMMIT

    def ack_expected(self, participant_protocol: str, outcome: Outcome) -> bool:
        # Commit decisions are acknowledged by everyone; aborts by no one.
        return outcome is Outcome.COMMIT

    def respond_unknown(self, inquirer_protocol: str) -> Outcome:
        return Outcome.ABORT
