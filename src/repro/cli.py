"""Command-line interface: reproduce any of the paper's artifacts.

Examples::

    python -m repro list                 # what can be reproduced
    python -m repro figure F1a           # one protocol-flow figure
    python -m repro theorem 1            # a theorem demonstration
    python -m repro costs --participants 4
    python -m repro taxonomy             # Figure 5
    python -m repro all                  # everything, in order
    python -m repro explore --seeds 0:200 --protocol u2pc
    python -m repro explore --replay tests/explore/artifacts/<file>.json
    python -m repro bench --scenario all --reps 3
    python -m repro bench --check
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.analysis.taxonomy import classify, render_taxonomy
from repro.errors import ReproError
from repro.experiments.ablation import render_ablation, run_ablation
from repro.experiments.coordinator_log import render_cl, run_cl_experiment
from repro.experiments.costs import cost_table, run_cost_experiment
from repro.experiments.flows import (
    FIGURES,
    matches_figure,
    render_flow,
    reproduce_figure,
)
from repro.experiments.iyv import render_iyv, run_iyv_experiment
from repro.experiments.latency import latency_sweep, render_latency
from repro.experiments.read_only import render_read_only, run_read_only_experiment
from repro.experiments.recovery import recovery_experiment, render_recovery
from repro.experiments.selection import render_selection, selection_ablation
from repro.experiments.theorem1 import render_theorem1, run_theorem1
from repro.experiments.throughput import render_throughput, run_throughput_experiment
from repro.experiments.theorem2 import render_theorem2, run_theorem2
from repro.experiments.theorem3 import render_theorem3, run_theorem3


def _cmd_list(args: argparse.Namespace) -> str:
    lines = ["Reproducible artifacts:", ""]
    for figure_id, case in FIGURES.items():
        lines.append(f"  figure {figure_id:<10} {case.description}")
    lines += [
        "  theorem 1          U2PC cannot guarantee atomicity",
        "  theorem 2          C2PC is not operationally correct",
        "  theorem 3          PrAny operational-correctness stress",
        "  costs              C1: measured cost table",
        "  latency            C2: latency vs participant count",
        "  selection          C3: dynamic-selection ablation",
        "  readonly           C4: read-only optimization",
        "  iyv                C5: implicit yes-vote vs presumed abort",
        "  ablation           A1: lazy-record vulnerability window",
        "  throughput         C6: streaming throughput and residency",
        "  cl                 C7: coordinator log vs basic 2PC",
        "  recovery           R1: §4.2 coordinator recovery",
        "  taxonomy           F5: atomic-commitment taxonomy",
        "  all                everything above, in order",
        "  explore            fuzz adversarial schedules (VOPR-style; "
        "--sharded / --replicated N topologies)",
        "  bench              measure simulator throughput (BENCH_sim.json)",
        "  live               run the engines over real TCP sockets (asyncio; "
        "--multiprocess, --sharded, --replicated N, --codec binary)",
        "  loadgen            open-loop traffic generator: latency vs "
        "offered load (seeded Poisson/bursty arrivals, saturation knee)",
    ]
    return "\n".join(lines)


def _cmd_figure(args: argparse.Namespace) -> str:
    result = reproduce_figure(args.id, seed=args.seed)
    verdict = matches_figure(result)
    return render_flow(result) + f"\nlane match vs paper figure: {verdict}"


def _cmd_theorem(args: argparse.Namespace) -> str:
    if args.number == 1:
        return render_theorem1(run_theorem1(seed=args.seed))
    if args.number == 2:
        return render_theorem2(run_theorem2(seed=args.seed))
    return render_theorem3(run_theorem3(seed=args.seed))


def _cmd_costs(args: argparse.Namespace) -> str:
    return cost_table(run_cost_experiment(n_participants=args.participants))


def _cmd_latency(args: argparse.Namespace) -> str:
    return render_latency(latency_sweep())


def _cmd_selection(args: argparse.Namespace) -> str:
    return render_selection(selection_ablation())


def _cmd_readonly(args: argparse.Namespace) -> str:
    return render_read_only(run_read_only_experiment())


def _cmd_iyv(args: argparse.Namespace) -> str:
    return render_iyv(run_iyv_experiment())


def _cmd_ablation(args: argparse.Namespace) -> str:
    return render_ablation(run_ablation(seed=args.seed))


def _cmd_cl(args: argparse.Namespace) -> str:
    return render_cl(run_cl_experiment(seed=args.seed))


def _cmd_throughput(args: argparse.Namespace) -> str:
    return render_throughput(run_throughput_experiment(seed=args.seed))


def _cmd_recovery(args: argparse.Namespace) -> str:
    return render_recovery(recovery_experiment(seed=args.seed))


def _cmd_taxonomy(args: argparse.Namespace) -> str:
    protocols = ("PrN", "PrA", "PrC", "PrAny", "U2PC(PrC)", "C2PC(PrN)")
    classifications = "\n".join(
        f"  {protocol}: {' > '.join(classify(protocol))}" for protocol in protocols
    )
    return render_taxonomy() + "\n\nClassification of this repo's protocols:\n" + classifications


def _parse_seed_range(text: str) -> range:
    """``"A:B"`` → ``range(A, B)``; a bare ``"N"`` → ``range(0, N)``."""
    if ":" in text:
        low, high = text.split(":", 1)
        start, stop = int(low), int(high)
    else:
        start, stop = 0, int(text)
    if stop <= start:
        raise argparse.ArgumentTypeError(f"empty seed range {text!r}")
    return range(start, stop)


def _cmd_explore(args: argparse.Namespace) -> str:
    # Imported lazily: the explorer pulls in multiprocessing machinery
    # that none of the other (fast, figure-style) commands need.
    from repro.explore import (
        Artifact,
        AdversaryGenerator,
        GeneratorConfig,
        ParallelRunner,
        replay_artifact,
        run_scenario,
        save_artifact,
        shrink,
    )
    from repro.explore.adversary import PROTOCOL_FAMILIES

    if args.replay is not None:
        try:
            result = replay_artifact(args.replay)
        except (ReproError, OSError, ValueError) as exc:
            # Missing file, malformed JSON, or a JSON file that is not
            # an artifact: a message, not a traceback.
            raise SystemExit(f"cannot replay {args.replay}: {exc}")
        if not result.exact:
            args.exit_code = 1
        return result.describe()

    if args.protocol not in PROTOCOL_FAMILIES:
        raise SystemExit(
            f"unknown protocol family {args.protocol!r}; "
            f"expected one of {sorted(PROTOCOL_FAMILIES)}"
        )
    seeds = range(0, 50) if args.smoke and args.seeds is None else (
        args.seeds if args.seeds is not None else range(0, 100)
    )
    budget = 30.0 if args.smoke and args.budget is None else args.budget
    if args.sharded and args.replicated:
        raise SystemExit(
            "--sharded and --replicated are mutually exclusive topologies"
        )
    config = GeneratorConfig(
        protocol=args.protocol,
        mix=args.mix,
        salt=args.salt,
        group_commit=args.group_commit,
        sharded=args.sharded,
        replicated=args.replicated,
    )

    def progress(done: int, violations: int) -> None:
        print(
            f"  ... {done} seeds swept, {violations} violation(s)",
            file=sys.stderr,
            flush=True,
        )

    runner = ParallelRunner(config, jobs=args.jobs, progress=progress)
    sweep = runner.sweep(seeds, time_budget=budget)

    lines = [
        f"explore — {args.protocol} over "
        + (args.mix or "sampled mixes")
        + f", seeds {seeds.start}:{seeds.stop}",
        f"  seeds swept:      {sweep.seeds_scanned}"
        + (" (wall-clock budget exhausted)" if sweep.budget_exhausted else ""),
        f"  elapsed:          {sweep.elapsed_seconds:.1f}s"
        f" ({sweep.seeds_scanned / max(sweep.elapsed_seconds, 1e-9):.0f} seeds/s,"
        f" jobs={runner.jobs})",
        f"  violations:       {len(sweep.violations)}",
    ]
    for category, count in sweep.category_counts().items():
        lines.append(f"    - {category}: {count}")

    if sweep.violations:
        args.exit_code = 1
        generator = AdversaryGenerator(config)
        artifacts_dir = Path(args.artifacts)
        shrunk = 0
        for summary in sweep.violations:
            if shrunk >= args.max_counterexamples:
                lines.append(
                    f"  (stopping after {shrunk} shrunk counterexamples; "
                    f"{len(sweep.violations) - shrunk} more violating seeds)"
                )
                break
            if args.no_shrink:
                lines.append(f"  seed {summary.seed}: {summary.summary}")
                continue
            result = shrink(generator.generate(summary.seed))
            artifact = Artifact.from_outcome(
                result.outcome,
                note=(
                    f"found by `repro explore --protocol {args.protocol}"
                    f"{' --mix ' + args.mix if args.mix else ''}"
                    f"{' --sharded' if args.sharded else ''}"
                    f"{f' --replicated {args.replicated}' if args.replicated else ''}"
                    f" --salt {args.salt}` at seed {summary.seed}; "
                    f"shrunk from {len(result.original.actions)} to "
                    f"{len(result.minimized.actions)} action(s)"
                ),
            )
            name = f"{args.protocol}-seed{summary.seed}.json"
            path = save_artifact(artifact, artifacts_dir / name)
            shrunk += 1
            lines.append(
                f"  seed {summary.seed}: {summary.summary}"
                f" -> shrunk to {len(result.minimized.actions)} action(s) "
                f"in {result.runs} runs, exported {path}"
            )
            lines.extend(
                "      " + line
                for line in result.outcome.verdict.describe().splitlines()
            )
    else:
        lines.append("  no oracle violations — every run atomic, safe and forgetful")
    return "\n".join(lines)


def _append_scenario_drift(
    lines: list,
    args: argparse.Namespace,
    added: list,
    missing: list,
    baseline_path: Path,
    codec_mismatched: list = (),
) -> None:
    """Fail a ``--check`` gate on scenario-set drift, by name.

    ``added`` scenarios were measured but have no baseline entry (the
    committed file is stale — regenerate it); ``missing`` ones are in
    the baseline but were not measured (a scenario was removed or
    renamed without regenerating); ``codec_mismatched`` ones were
    measured under a different codec than the baseline recorded (the
    timing delta would be the codec swap, not a regression — rerun with
    the baseline's codec or regenerate the baseline). Any of the three
    prints the named diff and exits the gate nonzero.
    """
    if not added and not missing and not codec_mismatched:
        return
    args.exit_code = 1
    lines.append(f"  SCENARIO DRIFT vs {baseline_path}:")
    if added:
        lines.append(
            "    added (measured now, absent from baseline — "
            "regenerate it): " + ", ".join(added)
        )
    if missing:
        lines.append(
            "    missing (in baseline but not measured now): "
            + ", ".join(missing)
        )
    for mismatch in codec_mismatched:
        lines.append(f"    codec mismatch (not comparable): {mismatch}")


def _cmd_bench(args: argparse.Namespace) -> str:
    # Imported lazily, like the explorer: the bench registry pulls in
    # the whole workload/explore stack.
    from repro.bench import (
        BenchConfig,
        build_report,
        compare_reports,
        get_scenarios,
        load_report,
        run_bench,
        scenario_diff,
        write_report,
    )

    if args.list:
        from repro.bench import SCENARIOS

        lines = ["Registered bench scenarios:", ""]
        for scenario in SCENARIOS.values():
            tags = ",".join(scenario.tags)
            lines.append(f"  {scenario.name:<20} [{tags}] {scenario.description}")
        return "\n".join(lines)

    try:
        scenarios = get_scenarios(args.scenario)
        config = BenchConfig(
            reps=args.reps,
            warmup=args.warmup,
            smoke=args.smoke,
            profile_dir=Path(args.profile) if args.profile is not None else None,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))

    def progress(scenario) -> None:
        print(f"  ... measuring {scenario.name}", file=sys.stderr, flush=True)

    measurements = run_bench(scenarios, config, progress=progress)
    report = build_report(measurements, config)

    lines = [
        f"bench — {len(measurements)} scenario(s), reps={config.reps}, "
        f"warmup={config.warmup}" + (", smoke" if config.smoke else ""),
    ]
    for m in measurements:
        lines.append(
            f"  {m.scenario.name:<20} {m.events_per_second.median:>12,.0f} ev/s"
            f"  (wall {m.wall_seconds.median:.3f}s ± {m.wall_seconds.iqr:.3f} IQR,"
            f" {m.result.events:,} events,"
            f" {m.messages_per_second.median:,.0f} msg/s,"
            f" rss {m.peak_rss_kb} KiB)"
        )

    if args.check:
        baseline_path = Path(args.baseline)
        try:
            baseline = load_report(baseline_path)
        except ReproError as exc:
            raise SystemExit(f"--check: {exc}")
        regressions, notes = compare_reports(report, baseline)
        for note in notes:
            lines.append(f"  note: {note}")
        added, missing, codec_mismatched = scenario_diff(report, baseline)
        if args.scenario != "all":
            # A partial --scenario selection legitimately skips baseline
            # entries; only names unknown to the baseline still fail.
            missing = []
        _append_scenario_drift(
            lines, args, added, missing, baseline_path, codec_mismatched
        )
        if regressions:
            args.exit_code = 1
            lines.append(f"  REGRESSION vs {baseline_path} (>20% slower):")
            lines.extend(f"    {regression}" for regression in regressions)
        else:
            lines.append(f"  no regressions vs {baseline_path}")
    else:
        path = write_report(report, Path(args.output))
        lines.append(f"  wrote {path}")
    if args.profile is not None:
        lines.append(f"  profiles under {args.profile}/")
    return "\n".join(lines)


def _cmd_live(args: argparse.Namespace) -> str:
    # Imported lazily: the live runtime pulls in asyncio server
    # machinery that the simulated commands never need.
    import asyncio
    import tempfile

    from repro.rt.cluster import LIVE_TIMEOUTS, RUN_MARGIN, LiveCluster
    from repro.workloads.generator import WorkloadSpec, generate_transactions
    from repro.workloads.mixes import homogeneous, three_way

    canonical = {"prn": "PrN", "pra": "PrA", "prc": "PrC"}
    protocol = args.protocol.lower()
    if protocol == "prany":
        mix, coordinator = three_way(args.participants), "dynamic"
    elif protocol in canonical:
        fixed = canonical[protocol]
        mix, coordinator = homogeneous(fixed, args.participants), fixed
    else:
        raise SystemExit(
            f"unknown live protocol {args.protocol!r}; "
            f"expected prany, prn, pra or prc"
        )

    if args.sharded and args.replicated:
        raise SystemExit(
            "--sharded and --replicated are mutually exclusive topologies"
        )

    if args.bench:
        from repro.bench import (
            BenchConfig,
            build_report,
            load_report,
            scenario_diff,
            write_report,
        )
        from repro.bench.runner import run_bench
        from repro.rt.bench import (
            LIVE_CHECK_THRESHOLD,
            LIVE_OPTIMIZATION_HISTORY,
            compare_live_reports,
            live_scenarios,
        )

        config = BenchConfig(reps=args.reps, warmup=1, smoke=args.smoke)

        def progress(scenario) -> None:
            print(f"  ... measuring {scenario.name}", file=sys.stderr, flush=True)

        scenarios = live_scenarios()
        if args.sharded:
            scenarios = [s for s in scenarios if "sharding" in s.tags]
        elif args.replicated:
            scenarios = [s for s in scenarios if "replication" in s.tags]
        measurements = run_bench(scenarios, config, progress=progress)
        report = build_report(
            measurements, config, optimizations=LIVE_OPTIMIZATION_HISTORY
        )
        lines = [
            f"live bench — {len(measurements)} scenario(s) over real "
            f"sockets, reps={config.reps}"
            + (", smoke" if config.smoke else ""),
        ]
        for m in measurements:
            detail = m.result.detail
            count = detail.get("transactions", m.result.events)
            unit = "msg" if "micro" in m.scenario.tags else "txn"
            lines.append(
                f"  {m.scenario.name:<26} "
                f"{m.events_per_second.median:>9.1f} {unit}/s"
                f"  (wall {m.wall_seconds.median:.3f}s "
                f"± {m.wall_seconds.iqr:.3f} IQR, "
                f"{count} {unit}s, "
                f"checks={'ok' if m.result.checks_passed else 'FAILED'})"
            )
            percentiles = detail.get("latency_ms")
            if percentiles:
                lines.append(
                    f"    decision latency: p50 {percentiles['p50']}ms, "
                    f"p95 {percentiles['p95']}ms, p99 {percentiles['p99']}ms"
                )
            if "knee" in detail:
                knee = detail["knee"]
                knee_text = (
                    f"{knee:g} txn/s offered"
                    if knee is not None
                    else "beyond the sweep"
                )
                curve = ", ".join(
                    f"{row['rate']:g}:{row['p95_ms']}ms" for row in detail["rows"]
                )
                lines.append(
                    f"    p95 by offered rate: {curve}; knee {knee_text}"
                )
            if not m.result.checks_passed:
                args.exit_code = 1
        if args.check:
            baseline_path = Path(args.baseline)
            try:
                baseline = load_report(baseline_path)
            except ReproError as exc:
                raise SystemExit(f"--check: {exc}")
            regressions, notes = compare_live_reports(report, baseline)
            for note in notes:
                lines.append(f"  note: {note}")
            added, missing, codec_mismatched = scenario_diff(report, baseline)
            if args.sharded or args.replicated:
                # The pair filters measure a deliberate subset; only
                # names unknown to the baseline fail.
                missing = []
            _append_scenario_drift(
                lines, args, added, missing, baseline_path, codec_mismatched
            )
            if regressions:
                args.exit_code = 1
                lines.append(
                    f"  REGRESSION vs {baseline_path} "
                    f"(>{LIVE_CHECK_THRESHOLD:.0%} slower):"
                )
                lines.extend(f"    {regression}" for regression in regressions)
            else:
                lines.append(f"  no regressions vs {baseline_path}")
        else:
            path = write_report(report, Path(args.bench_output))
            lines.append(f"  wrote {path}")
        return "\n".join(lines)

    n_transactions = 6 if args.smoke else args.transactions
    if args.sharded and args.participants < 2:
        raise SystemExit(
            "--sharded needs at least 2 participants: each transaction's "
            "coordinator comes from the sites it does not touch"
        )
    # Sharded placement draws each coordinator from the non-participant
    # sites, so one site must stay free of every transaction.
    pool = args.participants - 1 if args.sharded else args.participants
    spec = WorkloadSpec(
        n_transactions=n_transactions,
        abort_fraction=args.abort_fraction,
        participants_min=min(2, pool),
        participants_max=min(3, pool),
        inter_arrival=args.inter_arrival,
        hot_keys=0,
        seed=args.seed,
    )

    if args.multiprocess:
        from repro.rt.proc import ProcessCluster as cluster_cls
    else:
        cluster_cls = LiveCluster

    async def go(data_dir: str) -> list[str]:
        cluster = cluster_cls(
            mix,
            data_dir,
            coordinator=coordinator,
            seed=args.seed,
            timeouts=LIVE_TIMEOUTS,
            time_scale=args.time_scale,
            fsync=not args.no_fsync,
            sharded=args.sharded,
            replicated=args.replicated,
            codec=args.codec,
        )
        await cluster.start()
        kill_notes: list[str] = []
        kill_tasks: list[asyncio.Task] = []
        if args.kill_restart:
            victim = sorted(mix.site_protocols())[0]
            loop = asyncio.get_running_loop()
            armed = [False]

            async def kill_and_restart() -> None:
                await cluster.kill(victim)
                killed_at = cluster.sim.now
                await asyncio.sleep(cluster.sim.to_seconds(30.0))
                report = await cluster.restart(victim)
                kill_notes.append(
                    f"  kill/restart: {victim} killed at {killed_at:.1f}u, "
                    f"restarted at {cluster.sim.now:.1f}u; recovered from "
                    f"disk: {len(report.committed)} committed, "
                    f"{len(report.in_doubt)} in doubt"
                )

            def on_event(event) -> None:
                # Kill at the victim's first stable prepared record —
                # the moment it holds an in-doubt transaction.
                if (
                    not armed[0]
                    and event.site == victim
                    and event.category == "log"
                    and event.name == "append"
                    and event.details.get("type") == "prepared"
                ):
                    armed[0] = True
                    kill_tasks.append(loop.create_task(kill_and_restart()))

            cluster.sim.trace.subscribe(on_event)
        placement = None
        if args.sharded:
            from repro.mdbs.placement import placement_for

            placement = placement_for("hash")
        for txn in generate_transactions(
            spec, sorted(mix.site_protocols()), placement=placement
        ):
            cluster.submit(txn)
        await cluster.run(
            until=spec.inter_arrival * spec.n_transactions + RUN_MARGIN
        )
        for task in kill_tasks:
            await task
        await cluster.finalize()
        # Shut down first: the multiprocess cluster gathers its sites'
        # end-of-run footprints during shutdown (the in-process one
        # keeps them in memory either way).
        await cluster.shutdown()
        outcomes = cluster.outcomes()
        reports = cluster.check()

        mode = (
            "one OS process per site" if args.multiprocess else "in-process"
        )
        if args.sharded:
            mode += ", sharded coordinators"
        if args.replicated:
            mode += f", tm replicated over {args.replicated} acceptors"
        lines = [
            f"live run — {mix.name} over {len(mix)} participants "
            f"({mode}), {n_transactions} transactions, "
            f"{args.time_scale}s/unit (seed {args.seed})",
        ]
        for txn in cluster.submitted:
            lines.append(
                f"  {txn.txn_id}  {outcomes.get(txn.txn_id, 'UNDECIDED')}"
            )
        lines.extend(kill_notes)
        terminated = sum(
            1 for txn in cluster.submitted if txn.txn_id in outcomes
        )
        lines.append(
            f"  terminated: {terminated}/{len(cluster.submitted)} "
            f"({cluster.sim.now:.1f} virtual units)"
        )
        lines.append(
            f"  checks: atomicity={reports.atomicity.holds} "
            f"safe_state={reports.safe_state.holds} "
            f"operational={reports.operational.holds}"
        )
        if terminated < len(cluster.submitted) or not reports.all_hold:
            args.exit_code = 1
        return lines

    if args.data_dir is not None:
        lines = asyncio.run(go(args.data_dir))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            lines = asyncio.run(go(tmp))
    return "\n".join(lines)


def _cmd_loadgen(args: argparse.Namespace) -> str:
    # Imported lazily, like `live`: the runtime stack is not needed by
    # the simulated commands.
    import asyncio
    import tempfile

    from repro.rt.cluster import LIVE_TIMEOUTS, LiveCluster
    from repro.workloads.mixes import homogeneous, three_way
    from repro.workloads.openloop import OpenLoopSpec, run_rate_sweep

    canonical = {"prn": "PrN", "pra": "PrA", "prc": "PrC"}
    protocol = args.protocol.lower()
    if protocol == "prany":
        mix, coordinator = three_way(args.participants), "dynamic"
    elif protocol in canonical:
        fixed = canonical[protocol]
        mix, coordinator = homogeneous(fixed, args.participants), fixed
    else:
        raise SystemExit(
            f"unknown loadgen protocol {args.protocol!r}; "
            f"expected prany, prn, pra or prc"
        )
    if args.sharded and args.replicated:
        raise SystemExit(
            "--sharded and --replicated are mutually exclusive topologies"
        )
    if args.sharded and args.participants < 2:
        raise SystemExit(
            "--sharded needs at least 2 participants: each transaction's "
            "coordinator comes from the sites it does not touch"
        )
    try:
        rates = sorted(float(rate) for rate in args.rates.split(","))
    except ValueError:
        raise SystemExit(f"--rates must be comma-separated numbers: {args.rates!r}")
    if args.smoke:
        rates = rates[:2]

    # Sharded placement draws each coordinator from the non-participant
    # sites, so one site must stay free of every transaction.
    pool = args.participants - 1 if args.sharded else args.participants
    try:
        spec = OpenLoopSpec(
            rate=rates[0],
            n_transactions=8 if args.smoke else args.transactions,
            clients=args.clients,
            arrival=args.arrival,
            burst_mean=args.burst_mean,
            participants_min=min(2, pool),
            participants_max=min(3, pool),
            hot_keys=args.hot_keys,
            hot_fraction=args.hot_fraction,
            abort_fraction=args.abort_fraction,
            read_only_fraction=args.read_only_fraction,
            seed=args.seed,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))

    if args.multiprocess:
        from repro.rt.proc import ProcessCluster as cluster_cls
    else:
        cluster_cls = LiveCluster

    placement = None
    if args.sharded:
        from repro.mdbs.placement import placement_for

        placement = placement_for("hash")

    async def go(data_dir: str) -> dict:
        async def factory(rate: float):
            cluster = cluster_cls(
                mix,
                Path(data_dir) / f"rate{rate:g}",
                coordinator=coordinator,
                seed=args.seed,
                timeouts=LIVE_TIMEOUTS,
                time_scale=args.time_scale,
                fsync=not args.no_fsync,
                sharded=args.sharded,
                replicated=args.replicated,
                codec=args.codec,
            )
            await cluster.start()
            return cluster

        # run_rate_sweep's ``coordinator`` is the coordinator *site*
        # (the default "tm"); ``coordinator`` here is the policy the
        # cluster's engines run. Sharded topologies place per-txn.
        return await run_rate_sweep(
            factory,
            spec,
            rates,
            sorted(mix.site_protocols()),
            time_scale=args.time_scale,
            placement=placement,
        )

    if args.data_dir is not None:
        sweep = asyncio.run(go(args.data_dir))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            sweep = asyncio.run(go(tmp))

    mode = "one OS process per site" if args.multiprocess else "in-process"
    if args.sharded:
        mode += ", sharded coordinators"
    if args.replicated:
        mode += f", tm replicated over {args.replicated} acceptors"
    lines = [
        f"open-loop sweep — {mix.name} over {len(mix)} participants "
        f"({mode}, {args.codec} codec), {spec.n_transactions} txns/rate, "
        f"{spec.clients} clients, {spec.arrival} arrivals (seed {args.seed})",
        "",
        f"  {'offered':>9}  {'achieved':>9}  {'p50':>8}  {'p95':>8}  "
        f"{'p99':>8}  {'undecided':>9}  checks",
    ]
    for row in sweep["rows"]:
        lines.append(
            f"  {row['rate']:>7.1f}/s  {row['achieved']:>7.1f}/s  "
            f"{row['p50_ms']:>6.1f}ms  {row['p95_ms']:>6.1f}ms  "
            f"{row['p99_ms']:>6.1f}ms  {row['undecided']:>9}  "
            f"{'ok' if row['checks_ok'] else 'FAILED'}"
        )
        if not row["checks_ok"]:
            args.exit_code = 1
    knee = sweep["knee"]
    lines.append("")
    lines.append(
        f"  saturation knee: {knee:g} txn/s offered"
        if knee is not None
        else "  saturation knee: beyond the sweep (every rate held)"
    )
    return "\n".join(lines)


def _cmd_all(args: argparse.Namespace) -> str:
    sections: list[str] = []
    for figure_id in sorted(FIGURES):
        result = reproduce_figure(figure_id, seed=args.seed)
        sections.append(render_flow(result))
    sections.append(render_theorem1(run_theorem1(seed=args.seed)))
    sections.append(render_theorem2(run_theorem2(seed=args.seed)))
    sections.append(render_theorem3(run_theorem3(seed=args.seed)))
    sections.append(cost_table(run_cost_experiment()))
    sections.append(render_latency(latency_sweep()))
    sections.append(render_selection(selection_ablation()))
    sections.append(render_read_only(run_read_only_experiment()))
    sections.append(render_iyv(run_iyv_experiment()))
    sections.append(render_ablation(run_ablation(seed=args.seed)))
    sections.append(render_throughput(run_throughput_experiment(seed=args.seed)))
    sections.append(render_cl(run_cl_experiment(seed=args.seed)))
    sections.append(render_recovery(recovery_experiment(seed=args.seed)))
    sections.append(_cmd_taxonomy(args))
    rule = "\n" + "=" * 72 + "\n"
    return rule.join(sections)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the artifacts of 'Atomicity with Incompatible "
            "Presumptions' (PODS 1999)."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="master seed for the experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible artifacts").set_defaults(
        handler=_cmd_list
    )

    figure = sub.add_parser("figure", help="reproduce one flow figure")
    figure.add_argument("id", choices=sorted(FIGURES), help="figure id")
    figure.set_defaults(handler=_cmd_figure)

    theorem = sub.add_parser("theorem", help="demonstrate a theorem")
    theorem.add_argument("number", type=int, choices=(1, 2, 3))
    theorem.set_defaults(handler=_cmd_theorem)

    explore = sub.add_parser(
        "explore",
        help="fuzz adversarial schedules against the invariant oracle",
    )
    explore.add_argument(
        "--seeds",
        type=_parse_seed_range,
        default=None,
        metavar="A:B",
        help="seed range to sweep (default 0:100; 0:50 with --smoke)",
    )
    explore.add_argument(
        "--protocol",
        default="prany",
        help="coordinator family: prany, u2pc, c2pc, prn, pra, prc",
    )
    explore.add_argument(
        "--mix",
        default=None,
        help="pin the participant mix (default: sample per seed)",
    )
    explore.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: cpu count; 1 = in-process)",
    )
    explore.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; stop issuing new seeds once exceeded",
    )
    explore.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: seeds 0:50 under a 30s budget",
    )
    explore.add_argument(
        "--salt",
        type=int,
        default=0,
        help="schedule-space salt: same seeds, different schedules",
    )
    explore.add_argument(
        "--group-commit",
        action="store_true",
        help="run scenarios on the group-commit engine (log-force "
        "coalescing + message batching)",
    )
    explore.add_argument(
        "--sharded",
        action="store_true",
        help="shard the coordinator role across every site (hash "
        "placement, no tm site); coordinator crashes target each "
        "transaction's actual owner",
    )
    explore.add_argument(
        "--replicated",
        type=int,
        default=0,
        metavar="N",
        help="replicate the tm coordinator over N Paxos acceptors; the "
        "adversary adds acceptor-crash and leader-crash-then-failover "
        "victims (mutually exclusive with --sharded)",
    )
    explore.add_argument(
        "--artifacts",
        default="explore-artifacts",
        help="directory for shrunk counterexample artifacts",
    )
    explore.add_argument(
        "--max-counterexamples",
        type=int,
        default=3,
        help="shrink and export at most this many violating seeds",
    )
    explore.add_argument(
        "--no-shrink",
        action="store_true",
        help="report violating seeds without minimizing them",
    )
    explore.add_argument(
        "--replay",
        default=None,
        metavar="ARTIFACT",
        help="re-simulate an exported artifact and verify it bit-exactly",
    )
    explore.set_defaults(handler=_cmd_explore)

    bench = sub.add_parser(
        "bench",
        help="measure simulator throughput and write/compare BENCH_sim.json",
    )
    bench.add_argument(
        "--scenario",
        default="all",
        help="'all', or comma-separated scenario names/tags (see --list)",
    )
    bench.add_argument(
        "--reps", type=int, default=3, help="timed repetitions per scenario"
    )
    bench.add_argument(
        "--warmup", type=int, default=1, help="untimed warmup runs per scenario"
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: shrink every scenario to its small variant",
    )
    bench.add_argument(
        "--profile",
        default=None,
        metavar="DIR",
        help="also dump per-scenario cProfile artifacts into DIR",
    )
    bench.add_argument(
        "--output",
        default="BENCH_sim.json",
        help="report path (default: BENCH_sim.json at the repo root)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of writing; "
        "exit 1 on >20%% median events/sec regressions",
    )
    bench.add_argument(
        "--baseline",
        default="BENCH_sim.json",
        help="baseline file for --check (default: BENCH_sim.json)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    bench.set_defaults(handler=_cmd_bench)

    live = sub.add_parser(
        "live",
        help="run the protocol engines over real TCP sockets (asyncio)",
    )
    live.add_argument(
        "--protocol",
        default="prany",
        help="prany (dynamic over a PrN+PrA+PrC mix), prn, pra or prc",
    )
    live.add_argument(
        "--participants", type=int, default=4, help="participant site count"
    )
    live.add_argument(
        "--transactions", type=int, default=12, help="workload size"
    )
    live.add_argument("--abort-fraction", type=float, default=0.25)
    live.add_argument(
        "--inter-arrival",
        type=float,
        default=1.0,
        help="mean virtual units between submissions",
    )
    live.add_argument(
        "--time-scale",
        type=float,
        default=0.01,
        help="wall-clock seconds per virtual time unit",
    )
    live.add_argument(
        "--data-dir",
        default=None,
        help="directory for site WALs/snapshots (default: a temp dir)",
    )
    live.add_argument(
        "--kill-restart",
        action="store_true",
        help="kill the first participant at its first prepared record, "
        "restart it 30 virtual units later (crash-recovery round)",
    )
    live.add_argument(
        "--multiprocess",
        action="store_true",
        help="run every site as its own supervised OS process "
        "(recovery-first boot; --kill-restart becomes a real SIGKILL)",
    )
    live.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on log forces (faster; tests only)",
    )
    live.add_argument(
        "--sharded",
        action="store_true",
        help="shard the coordinator role across every site (hash "
        "placement, no tm site); with --bench, measure only the "
        "single-vs-sharded scenario pair",
    )
    live.add_argument(
        "--replicated",
        type=int,
        default=0,
        metavar="N",
        help="replicate the tm coordinator over N Paxos acceptor hosts "
        "(acc0..acc{N-1}, own WALs, decisions stable at a quorum); with "
        "--bench, measure only the plain-vs-replicated scenario pair "
        "(mutually exclusive with --sharded)",
    )
    live.add_argument(
        "--codec",
        choices=("json", "binary"),
        default="json",
        help="wire/WAL/control encoding for every site: json (debuggable "
        "text) or binary (struct-packed fast path); both ends of every "
        "connection must agree",
    )
    live.add_argument(
        "--bench",
        action="store_true",
        help="measure the live bench scenarios instead and write "
        "BENCH_live.json (wall-clock transactions/sec + latency "
        "percentiles)",
    )
    live.add_argument(
        "--bench-output",
        default="BENCH_live.json",
        help="report path for --bench (default: BENCH_live.json)",
    )
    live.add_argument(
        "--reps", type=int, default=3, help="timed reps for --bench"
    )
    live.add_argument(
        "--check",
        action="store_true",
        help="with --bench: compare against the committed baseline "
        "instead of writing; exit 1 on a live-throughput regression",
    )
    live.add_argument(
        "--baseline",
        default="BENCH_live.json",
        help="baseline file for --bench --check (default: BENCH_live.json)",
    )
    live.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: 6 transactions (or the small bench variant)",
    )
    live.set_defaults(handler=_cmd_live)

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop traffic generator: latency vs offered load over "
        "a live cluster (saturation knee)",
    )
    loadgen.add_argument(
        "--protocol",
        default="prany",
        help="prany (dynamic over a PrN+PrA+PrC mix), prn, pra or prc",
    )
    loadgen.add_argument(
        "--participants", type=int, default=4, help="participant site count"
    )
    loadgen.add_argument(
        "--rates",
        default="25,50,100,200",
        help="comma-separated offered rates to sweep, in transactions "
        "per wall second (one fresh cluster per rate)",
    )
    loadgen.add_argument(
        "--transactions",
        type=int,
        default=32,
        help="transactions per rate (identical bodies at every rate)",
    )
    loadgen.add_argument(
        "--clients",
        type=int,
        default=4,
        help="independent arrival streams, merged (each offers rate/clients)",
    )
    loadgen.add_argument(
        "--arrival",
        choices=("poisson", "bursty"),
        default="poisson",
        help="arrival process: poisson (exponential gaps) or bursty "
        "(geometric batches at the same offered rate)",
    )
    loadgen.add_argument(
        "--burst-mean",
        type=float,
        default=4.0,
        help="mean batch size of the bursty arrival process",
    )
    loadgen.add_argument(
        "--hot-keys",
        type=int,
        default=0,
        help="size of the shared hot-key pool (0 = no lock contention)",
    )
    loadgen.add_argument(
        "--hot-fraction",
        type=float,
        default=0.0,
        help="probability a write targets the hot-key pool",
    )
    loadgen.add_argument("--abort-fraction", type=float, default=0.0)
    loadgen.add_argument(
        "--read-only-fraction",
        type=float,
        default=0.0,
        help="probability a transaction only reads (READ votes under "
        "the read-only optimization)",
    )
    loadgen.add_argument(
        "--codec",
        choices=("json", "binary"),
        default="json",
        help="wire/WAL/control encoding for every site (the sweep pair "
        "json-vs-binary quantifies the fast path)",
    )
    loadgen.add_argument(
        "--multiprocess",
        action="store_true",
        help="run every site as its own supervised OS process",
    )
    loadgen.add_argument(
        "--sharded",
        action="store_true",
        help="shard the coordinator role across every site (hash "
        "placement, no tm site)",
    )
    loadgen.add_argument(
        "--replicated",
        type=int,
        default=0,
        metavar="N",
        help="replicate the tm coordinator over N Paxos acceptor hosts "
        "(mutually exclusive with --sharded)",
    )
    loadgen.add_argument(
        "--data-dir",
        default=None,
        help="directory for site WALs/snapshots (default: a temp dir)",
    )
    loadgen.add_argument(
        "--time-scale",
        type=float,
        default=0.01,
        help="wall-clock seconds per virtual time unit",
    )
    loadgen.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on log forces (faster; tests only)",
    )
    loadgen.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: 8 transactions over the two lowest rates",
    )
    loadgen.set_defaults(handler=_cmd_loadgen)

    costs = sub.add_parser("costs", help="C1: measured cost table")
    costs.add_argument("--participants", type=int, default=2)
    costs.set_defaults(handler=_cmd_costs)

    for name, handler, help_text in (
        ("latency", _cmd_latency, "C2: latency vs participant count"),
        ("selection", _cmd_selection, "C3: dynamic-selection ablation"),
        ("readonly", _cmd_readonly, "C4: read-only optimization"),
        ("iyv", _cmd_iyv, "C5: implicit yes-vote vs presumed abort"),
        ("ablation", _cmd_ablation, "A1: lazy-record vulnerability window"),
        ("throughput", _cmd_throughput, "C6: streaming throughput/residency"),
        ("cl", _cmd_cl, "C7: coordinator log vs basic 2PC"),
        ("recovery", _cmd_recovery, "R1: coordinator recovery"),
        ("taxonomy", _cmd_taxonomy, "F5: the taxonomy tree"),
        ("all", _cmd_all, "run every artifact in order"),
    ):
        sub.add_parser(name, help=help_text).set_defaults(handler=handler)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler: Callable[[argparse.Namespace], str] = args.handler
    try:
        print(handler(args))
    except BrokenPipeError:
        # Output was piped into something that closed early (e.g. head).
        return 0
    # Commands with a pass/fail notion (explore) set exit_code; the
    # reproduction commands always succeed once they print.
    return getattr(args, "exit_code", 0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
