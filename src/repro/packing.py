"""Compact binary value encoding (the ``binary`` codec's foundation).

A hand-rolled, dependency-free, msgpack-style tagged encoding for the
JSON-representable values the system already ships: ``None``, bools,
ints (arbitrary precision), IEEE-754 doubles, unicode strings, lists
and string-keyed dicts. The wire codec (:mod:`repro.rt.codec`), the
binary WAL (:mod:`repro.storage.file_log`) and the multiproc control
plane (:mod:`repro.rt.proc.control`) all frame their payloads with
:func:`pack_value` / :func:`unpack_value`.

Design points:

* **Same value domain as JSON.** Anything :func:`json.dumps` accepts
  round-trips here with the same normalizations (tuples become lists,
  dict keys must be strings); anything it rejects raises
  :class:`PackError`. That is what lets the two codecs be byte-equal
  *twins* at the conformance layer: the observable values are
  identical, only the bytes differ.
* **Self-describing tags, length-prefixed containers.** Decoding never
  scans for delimiters, so arbitrary binary payloads need no escaping
  and decode cost is linear in the encoded size.
* **Strict decoding.** Unknown tags, truncated input, non-string map
  keys and over-deep nesting raise :class:`PackError` — a torn or
  corrupt frame is always loud, never a silently wrong value.

Wire format (first byte is the tag)::

    0x00..0x7f  positive fixint (the byte is the value)
    0xe0..0xff  negative fixint (-32..-1, two's complement byte)
    0xa0..0xbf  fixstr: low 5 bits = UTF-8 byte length, bytes follow
    0x80..0x8f  fixmap: low 4 bits = pair count
    0x90..0x9f  fixarray: low 4 bits = element count
    0xc0 None   0xc2 False   0xc3 True
    0xc7        bigint: u32 byte length + signed big-endian two's
                complement bytes (ints beyond int64; JSON has these)
    0xcb        float64, big-endian IEEE-754
    0xd1/0xd2/0xd3  int16/int32/int64, signed big-endian
    0xd9/0xda/0xdb  str8/str16/str32: u8/u16/u32 length + UTF-8 bytes
    0xdc/0xdd   array16/array32: u16/u32 element count
    0xde/0xdf   map16/map32: u16/u32 pair count
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import ReproError

#: Containers deeper than this are rejected on both encode and decode.
#: Protocol payloads are a handful of levels deep; the cap exists so a
#: hostile or corrupt frame cannot recurse the decoder to death.
MAX_DEPTH = 64

#: Short strings (fixstr range) come from a small vocabulary — payload
#: keys, site ids, protocol names, vote strings — so both directions
#: memoize them. The caps bound what a hostile peer can pin in memory;
#: once full, the caches stop growing and encoding stays correct, just
#: uncached. Entries are value-keyed, so staleness is impossible.
_STR_CACHE_MAX = 4096
_encoded_strs: dict[str, bytes] = {}
_decoded_strs: dict[bytes, str] = {}

_FLOAT = struct.Struct(">d")
_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I16 = struct.Struct(">h")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")


class PackError(ReproError):
    """A value could not be binary-encoded or -decoded."""


def pack_value(value: Any) -> bytes:
    """Encode one JSON-representable value to its binary form.

    Raises:
        PackError: for values outside the JSON domain (sets, bytes,
            non-string dict keys, custom objects) or nesting beyond
            :data:`MAX_DEPTH` — the same shapes the JSON codec refuses.
    """
    out = bytearray()
    _pack_into(out, value, MAX_DEPTH)
    return bytes(out)


def pack_into(out: bytearray, value: Any) -> None:
    """Append one value's encoding to ``out`` (no intermediate copy).

    Same domain and errors as :func:`pack_value`; this is the
    allocation-free form for callers assembling multi-value bodies
    (the wire codec, the WAL record writer).
    """
    _pack_into(out, value, MAX_DEPTH)


def _pack_into(out: bytearray, value: Any, depth: int) -> None:
    if value is None:
        out.append(0xC0)
    elif value is True:
        out.append(0xC3)
    elif value is False:
        out.append(0xC2)
    elif type(value) is int or (isinstance(value, int) and not isinstance(value, bool)):
        _pack_int(out, int(value))
    elif isinstance(value, float):
        out.append(0xCB)
        out += _FLOAT.pack(value)
    elif isinstance(value, str):
        _pack_str(out, value)
    elif isinstance(value, (list, tuple)):
        if depth <= 0:
            raise PackError("value nests deeper than MAX_DEPTH")
        n = len(value)
        if n < 16:
            out.append(0x90 | n)
        elif n <= 0xFFFF:
            out.append(0xDC)
            out += _U16.pack(n)
        else:
            out.append(0xDD)
            out += _U32.pack(n)
        for item in value:
            _pack_into(out, item, depth - 1)
    elif isinstance(value, dict):
        if depth <= 0:
            raise PackError("value nests deeper than MAX_DEPTH")
        n = len(value)
        if n < 16:
            out.append(0x80 | n)
        elif n <= 0xFFFF:
            out.append(0xDE)
            out += _U16.pack(n)
        else:
            out.append(0xDF)
            out += _U32.pack(n)
        for key, item in value.items():
            if not isinstance(key, str):
                raise PackError(
                    f"dict keys must be strings, got {type(key).__name__}"
                )
            _pack_str(out, key)
            _pack_into(out, item, depth - 1)
    else:
        raise PackError(
            f"value of type {type(value).__name__} is not binary-encodable "
            f"(the codec covers exactly the JSON value domain)"
        )


def _pack_int(out: bytearray, value: int) -> None:
    if 0 <= value <= 0x7F:
        out.append(value)
    elif -32 <= value < 0:
        out.append(value & 0xFF)
    elif -(2**15) <= value < 2**15:
        out.append(0xD1)
        out += _I16.pack(value)
    elif -(2**31) <= value < 2**31:
        out.append(0xD2)
        out += _I32.pack(value)
    elif -(2**63) <= value < 2**63:
        out.append(0xD3)
        out += _I64.pack(value)
    else:
        raw = value.to_bytes(
            (value.bit_length() + 8) // 8, "big", signed=True
        )
        out.append(0xC7)
        out += _U32.pack(len(raw))
        out += raw


def _pack_str(out: bytearray, value: str) -> None:
    cached = _encoded_strs.get(value)
    if cached is not None:
        out += cached
        return
    raw = value.encode("utf-8")
    n = len(raw)
    if n < 32:
        piece = bytes((0xA0 | n,)) + raw
        if len(_encoded_strs) < _STR_CACHE_MAX:
            _encoded_strs[value] = piece
        out += piece
        return
    if n <= 0xFF:
        out.append(0xD9)
        out += _U8.pack(n)
    elif n <= 0xFFFF:
        out.append(0xDA)
        out += _U16.pack(n)
    else:
        out.append(0xDB)
        out += _U32.pack(n)
    out += raw


def unpack_value(data: bytes | memoryview) -> Any:
    """Decode one value, requiring the input to be fully consumed.

    Raises:
        PackError: on truncated input, trailing garbage, unknown tags,
            invalid UTF-8, or non-string map keys.
    """
    view = memoryview(data)
    value, end = _unpack_from(view, 0, MAX_DEPTH)
    if end != len(view):
        raise PackError(
            f"trailing garbage after value: {len(view) - end} unconsumed bytes"
        )
    return value


def unpack_prefix(data: bytes | memoryview, offset: int = 0) -> tuple[Any, int]:
    """Decode one value starting at ``offset``; return ``(value, end)``.

    Unlike :func:`unpack_value` this tolerates trailing bytes, which is
    what sequential decoders (the wire-message header walker, the WAL
    record reader) need.
    """
    return _unpack_from(memoryview(data), offset, MAX_DEPTH)


def _need(view: memoryview, offset: int, count: int) -> None:
    if offset + count > len(view):
        raise PackError(
            f"truncated value: need {count} bytes at offset {offset}, "
            f"have {len(view) - offset}"
        )


def _unpack_from(view: memoryview, offset: int, depth: int) -> tuple[Any, int]:
    _need(view, offset, 1)
    tag = view[offset]
    offset += 1
    if tag <= 0x7F:
        return tag, offset
    if tag >= 0xE0:
        return tag - 256, offset
    if 0xA0 <= tag <= 0xBF:
        return _take_str(view, offset, tag & 0x1F)
    if 0x90 <= tag <= 0x9F:
        return _take_array(view, offset, tag & 0x0F, depth)
    if 0x80 <= tag <= 0x8F:
        return _take_map(view, offset, tag & 0x0F, depth)
    if tag == 0xC0:
        return None, offset
    if tag == 0xC2:
        return False, offset
    if tag == 0xC3:
        return True, offset
    if tag == 0xCB:
        _need(view, offset, 8)
        return _FLOAT.unpack_from(view, offset)[0], offset + 8
    if tag == 0xD1:
        _need(view, offset, 2)
        return _I16.unpack_from(view, offset)[0], offset + 2
    if tag == 0xD2:
        _need(view, offset, 4)
        return _I32.unpack_from(view, offset)[0], offset + 4
    if tag == 0xD3:
        _need(view, offset, 8)
        return _I64.unpack_from(view, offset)[0], offset + 8
    if tag == 0xC7:
        _need(view, offset, 4)
        n = _U32.unpack_from(view, offset)[0]
        offset += 4
        _need(view, offset, n)
        raw = bytes(view[offset : offset + n])
        return int.from_bytes(raw, "big", signed=True), offset + n
    if tag == 0xD9:
        _need(view, offset, 1)
        return _take_str(view, offset + 1, view[offset])
    if tag == 0xDA:
        _need(view, offset, 2)
        return _take_str(view, offset + 2, _U16.unpack_from(view, offset)[0])
    if tag == 0xDB:
        _need(view, offset, 4)
        return _take_str(view, offset + 4, _U32.unpack_from(view, offset)[0])
    if tag == 0xDC:
        _need(view, offset, 2)
        return _take_array(
            view, offset + 2, _U16.unpack_from(view, offset)[0], depth
        )
    if tag == 0xDD:
        _need(view, offset, 4)
        return _take_array(
            view, offset + 4, _U32.unpack_from(view, offset)[0], depth
        )
    if tag == 0xDE:
        _need(view, offset, 2)
        return _take_map(
            view, offset + 2, _U16.unpack_from(view, offset)[0], depth
        )
    if tag == 0xDF:
        _need(view, offset, 4)
        return _take_map(
            view, offset + 4, _U32.unpack_from(view, offset)[0], depth
        )
    raise PackError(f"unknown value tag 0x{tag:02x} at offset {offset - 1}")


def _take_str(view: memoryview, offset: int, n: int) -> tuple[str, int]:
    _need(view, offset, n)
    raw = bytes(view[offset : offset + n])
    text = _decoded_strs.get(raw)
    if text is None:
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise PackError(f"invalid UTF-8 in string: {exc}")
        if n < 32 and len(_decoded_strs) < _STR_CACHE_MAX:
            _decoded_strs[raw] = text
    return text, offset + n


def _take_array(
    view: memoryview, offset: int, n: int, depth: int
) -> tuple[list[Any], int]:
    if depth <= 0:
        raise PackError("value nests deeper than MAX_DEPTH")
    items = []
    for _ in range(n):
        item, offset = _unpack_from(view, offset, depth - 1)
        items.append(item)
    return items, offset


def _take_map(
    view: memoryview, offset: int, n: int, depth: int
) -> tuple[dict[str, Any], int]:
    if depth <= 0:
        raise PackError("value nests deeper than MAX_DEPTH")
    out: dict[str, Any] = {}
    for _ in range(n):
        _need(view, offset, 1)
        tag = view[offset]
        if not (0xA0 <= tag <= 0xBF or tag in (0xD9, 0xDA, 0xDB)):
            raise PackError(
                f"map keys must be strings, got tag 0x{tag:02x}"
            )
        key, offset = _unpack_from(view, offset, depth - 1)
        value, offset = _unpack_from(view, offset, depth - 1)
        out[key] = value
    return out, offset
