"""``python -m repro`` — reproduce the paper's artifacts from the shell."""

import sys

from repro.cli import main

sys.exit(main())
