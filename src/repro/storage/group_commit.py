"""Group commit: coalescing concurrent log forces into batched writes.

The paper's protocols compete on *forced* log writes — each
``force_append`` is one synchronous device round trip (Tables 1–2). A
:class:`GroupCommitLog` amortizes that cost the way production commit
stacks do: concurrent :meth:`~StableLog.force_append_async` requests
within one sim-time window are appended immediately (preserving LSN /
WAL order) but stabilized by a *single* force when the window closes,
and each requester's completion callback runs only once its record is
stable.

The window closes when either bound of :class:`GroupCommitConfig` is
hit — ``max_delay`` sim-time units after the first request opened it,
or as soon as ``max_batch`` requests have joined — or eagerly when
anything forces the log synchronously (a plain :meth:`force` /
:meth:`force_append`), since a synchronous force stabilizes the whole
buffer anyway. Window closes always run from a simulator event, never
inside the requester's stack, so protocol code observes a strict
"request now, resume later" discipline in both bounds.

Crash semantics are inherited from :class:`StableLog` and are what the
crash-at-batch-boundary tests pin down: a crash mid-window discards the
*entire* buffered batch and drops every pending completion callback —
recovery can observe the batch fully forced or not at all, never a
partially-forced batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import StorageError
from repro.sim.kernel import Simulator, Timer
from repro.storage.log_records import LogRecord
from repro.storage.stable_log import StableLog


@dataclass(frozen=True)
class GroupCommitConfig:
    """Bounds on one coalescing window.

    Attributes:
        max_delay: sim-time the first request in a window may wait
            before the batch is forced. ``0.0`` still defers completion
            to a same-timestamp event (batching exactly the requests
            issued at one instant).
        max_batch: force as soon as this many requests have coalesced,
            without waiting out ``max_delay``.
    """

    max_delay: float = 0.5
    max_batch: int = 8

    def __post_init__(self) -> None:
        if self.max_delay < 0:
            raise StorageError(f"max_delay cannot be negative: {self.max_delay!r}")
        if self.max_batch < 1:
            raise StorageError(f"max_batch must be >= 1: {self.max_batch!r}")


class GroupCommitLog(StableLog):
    """A stable log that group-commits its forced writes."""

    def __init__(
        self,
        sim: Simulator,
        site_id: str,
        config: Optional[GroupCommitConfig] = None,
    ) -> None:
        super().__init__(sim, site_id)
        self._init_group_commit(config)

    def _init_group_commit(self, config: Optional[GroupCommitConfig]) -> None:
        """Install the window bookkeeping. Split out of ``__init__`` so
        storage subclasses mixing this engine over another base (the
        live :class:`~repro.storage.file_log.GroupCommitFileLog`) can
        run their own base initializer first."""
        self.config = config if config is not None else GroupCommitConfig()
        # Completion callbacks awaiting the current window's force, in
        # request order.
        self._pending: list[Callable[[], None]] = []
        # Requests coalesced into the current window (0 = no window).
        self._window_size = 0
        self._window_timer: Optional[Timer] = None
        self._window_closing = False
        # Bumped on crash so queued window-close events go stale.
        self._generation = 0
        # Cost counters: force_count (inherited) counts actual device
        # forces; force_requests counts logical force_append_async
        # requests — their ratio is the amortization factor.
        self.force_requests = 0

    @property
    def defers_forces(self) -> bool:
        return True

    @property
    def pending_callbacks(self) -> int:
        """Completion callbacks waiting for the window to close."""
        return len(self._pending)

    # -- writing ------------------------------------------------------------

    def force_append_async(
        self,
        record: LogRecord,
        on_stable: Optional[Callable[[], None]] = None,
    ) -> LogRecord:
        """Append now; join the open coalescing window (opening one if
        needed); run ``on_stable`` after the window's single force."""
        self.append(record)
        self.force_requests += 1
        if on_stable is not None:
            self._pending.append(on_stable)
        self._window_size += 1
        if self._window_timer is None:
            self._window_timer = self._sim.set_timer(
                self.config.max_delay,
                self._window_close(),
                label=f"group-commit window {self._site_id}",
            )
        if self._window_size >= self.config.max_batch and not self._window_closing:
            # Batch bound hit: close at the current timestamp — via an
            # event, never inside the requester's stack, so completion
            # callbacks cannot reenter the caller.
            self._window_timer.cancel()
            self._window_timer = self._sim.set_timer(
                0.0,
                self._window_close(),
                label=f"group-commit batch-full {self._site_id}",
            )
            self._window_closing = True
        return record

    def force(self) -> None:
        """Force = close the window early: one device force stabilizes
        the whole buffer, then the coalesced completion callbacks run
        (in request order)."""
        callbacks = self._take_window()
        super().force()
        for callback in callbacks:
            callback()

    def flush(self) -> int:
        """A background flush also stabilizes any coalesced batch, so
        it completes the pending requests — without charging a force."""
        callbacks = self._take_window()
        flushed = super().flush()
        for callback in callbacks:
            callback()
        return flushed

    # -- crash --------------------------------------------------------------

    def crash(self) -> int:
        """A crash loses the whole in-flight batch: buffered records
        *and* their completion callbacks — all or nothing, never a
        partially-forced batch."""
        self._generation += 1
        self._take_window()
        return super().crash()

    # -- internals ----------------------------------------------------------

    def _take_window(self) -> list[Callable[[], None]]:
        """Close the window bookkeeping; return the callbacks it held.

        Callbacks registered *after* this point (e.g. by a completion
        callback issuing a follow-up force request) open a fresh window
        and are not affected.
        """
        callbacks = self._pending
        self._pending = []
        self._window_size = 0
        self._window_closing = False
        if self._window_timer is not None:
            self._window_timer.cancel()
            self._window_timer = None
        return callbacks

    def _window_close(self) -> Callable[[], None]:
        generation = self._generation

        def fire() -> None:
            if generation != self._generation or not self._open:
                return
            if self._window_size == 0:
                return  # already closed by an eager force/flush
            self.force()

        return fire

    def __repr__(self) -> str:
        return (
            f"GroupCommitLog(site={self._site_id!r}, "
            f"stable={self.stable_record_count}, "
            f"buffered={self.buffered_record_count}, "
            f"forces={self.force_count}, requests={self.force_requests})"
        )
