"""Log record types shared by the commit protocols and the local DBMS.

The record vocabulary follows the paper and its appendix:

* ``INITIATION`` — force-written by a PrC or PrAny coordinator before
  the voting phase; carries the participant identities (and, for PrAny,
  the commit protocol of each participant).
* ``PREPARED`` — force-written by a participant before voting Yes.
* ``COMMIT`` / ``ABORT`` — decision records. Whether they are forced and
  by whom differs per protocol; the ``forced`` flag on the record
  captures what actually happened in a run.
* ``END`` — non-forced record marking that a transaction's records may
  be garbage collected.
* ``UPDATE`` — a local DBMS redo/undo record (before- and after-images).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class RecordType(enum.Enum):
    """Kinds of records a site can write to its stable log."""

    INITIATION = "initiation"
    PREPARED = "prepared"
    COMMIT = "commit"
    ABORT = "abort"
    END = "end"
    UPDATE = "update"
    #: Paxos acceptor state (repro.replication): registrations,
    #: promises and accepted decisions, forced before every reply.
    ACCEPT = "accept"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_DECISION_TYPES = frozenset({RecordType.COMMIT, RecordType.ABORT})

_record_ids = itertools.count(1)


@dataclass
class LogRecord:
    """A single write-ahead-log record.

    Attributes:
        type: the record kind.
        txn_id: transaction the record belongs to.
        payload: type-specific data — participant lists, each
            participant's protocol, before/after images, the decision.
        lsn: log sequence number, assigned when appended to a log.
        forced: True once the record is on stable storage *because of a
            force* that included it (set by :class:`StableLog`).
        record_id: globally unique id, useful in traces and tests.
    """

    type: RecordType
    txn_id: str
    payload: dict[str, Any] = field(default_factory=dict)
    lsn: Optional[int] = None
    forced: bool = False
    record_id: int = field(default_factory=lambda: next(_record_ids))

    @property
    def is_decision(self) -> bool:
        """True for COMMIT and ABORT records."""
        return self.type in _DECISION_TYPES

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into :attr:`payload`."""
        return self.payload.get(key, default)

    def __str__(self) -> str:
        lsn = self.lsn if self.lsn is not None else "?"
        flags = "F" if self.forced else " "
        return f"<{lsn}:{flags} {self.type.value} txn={self.txn_id}>"


def initiation_record(
    txn_id: str,
    participants: list[str],
    protocols: Optional[dict[str, str]] = None,
) -> LogRecord:
    """Build an initiation (collecting) record.

    For PrAny, ``protocols`` maps each participant to its commit
    protocol name, as required by §4.1 of the paper.
    """
    payload: dict[str, Any] = {"participants": list(participants)}
    if protocols is not None:
        payload["protocols"] = dict(protocols)
    return LogRecord(RecordType.INITIATION, txn_id, payload)


def prepared_record(txn_id: str, coordinator: str) -> LogRecord:
    """Build a participant's prepared record (remembers its coordinator)."""
    return LogRecord(RecordType.PREPARED, txn_id, {"coordinator": coordinator})


def decision_record(
    txn_id: str,
    decision: str,
    participants: Optional[list[str]] = None,
    role: str = "participant",
) -> LogRecord:
    """Build a COMMIT or ABORT decision record.

    Args:
        decision: ``"commit"`` or ``"abort"``.
        participants: recorded by coordinators so that the decision
            phase can be re-initiated after a crash.
        role: ``"coordinator"`` for a coordinator's decision record,
            ``"participant"`` for a participant's enforcement record.
            A site can play both roles for different transactions in
            the same log, so recovery filters on this tag.
    """
    if decision == "commit":
        record_type = RecordType.COMMIT
    elif decision == "abort":
        record_type = RecordType.ABORT
    else:
        raise ValueError(f"unknown decision {decision!r}")
    payload: dict[str, Any] = {"by": role}
    if participants is not None:
        payload["participants"] = list(participants)
    return LogRecord(record_type, txn_id, payload)


def end_record(txn_id: str) -> LogRecord:
    """Build an end record (transaction records may now be GC'd)."""
    return LogRecord(RecordType.END, txn_id)


def update_record(
    txn_id: str,
    key: str,
    before: Any,
    after: Any,
) -> LogRecord:
    """Build a local-DBMS redo/undo record with before/after images."""
    return LogRecord(
        RecordType.UPDATE,
        txn_id,
        {"key": key, "before": before, "after": after},
    )
