"""Participants' Commit Protocol (PCP) directory and its APP view.

Section 4 of the paper: a PrAny coordinator records the 2PC variant
employed by each participant in a stable table called the
*participants' commit protocol* (PCP) table, updated when a site joins
or leaves the environment. A main-memory portion, the *active
participants' protocols* (APP) table, holds the protocols of
participants with active transactions; the coordinator consults it to
select the protocol for each transaction.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import UnknownProtocolError


class CommitProtocolDirectory:
    """Stable site → commit-protocol mapping (the PCP table).

    The directory survives crashes (it is "kept on stable storage" in
    the paper), so :meth:`crash`/:meth:`recover` do not clear it; they
    only flush the volatile APP cache.
    """

    def __init__(
        self, known_protocols: Iterable[str] = ("PrN", "PrA", "PrC", "IYV", "CL")
    ) -> None:
        self._known = set(known_protocols)
        self._pcp: dict[str, str] = {}
        self._app: dict[str, str] = {}
        self._coordinators: set[str] = set()

    # -- membership ----------------------------------------------------------

    def register_site(self, site_id: str, protocol: str) -> None:
        """Record that ``site_id`` employs ``protocol`` (joins the MDBS)."""
        if protocol not in self._known:
            raise UnknownProtocolError(
                f"site {site_id!r} declares unknown protocol {protocol!r}; "
                f"known: {sorted(self._known)}"
            )
        self._pcp[site_id] = protocol

    def deregister_site(self, site_id: str) -> None:
        """Remove a site that left the distributed environment."""
        self._pcp.pop(site_id, None)
        self._app.pop(site_id, None)

    def register_coordinator(self, site_id: str) -> None:
        """Record that ``site_id`` can coordinate transactions.

        Log-less (coordinator-log) participants use this directory to
        know whom to pull redo information from after a restart.
        """
        self._coordinators.add(site_id)

    def coordinators(self) -> list[str]:
        """All coordinator-capable sites, in a stable order."""
        return sorted(self._coordinators)

    def knows(self, site_id: str) -> bool:
        return site_id in self._pcp

    def protocol_of(self, site_id: str) -> str:
        """The commit protocol ``site_id`` employs.

        Raises:
            UnknownProtocolError: if the site was never registered.
        """
        try:
            return self._pcp[site_id]
        except KeyError:
            raise UnknownProtocolError(
                f"no commit protocol registered for site {site_id!r}"
            ) from None

    def protocols_of(self, site_ids: Iterable[str]) -> dict[str, str]:
        """Mapping of each given site to its protocol."""
        return {site_id: self.protocol_of(site_id) for site_id in site_ids}

    # -- APP view --------------------------------------------------------------

    def activate(self, site_ids: Iterable[str]) -> Mapping[str, str]:
        """Load the given sites into the in-memory APP table."""
        for site_id in site_ids:
            self._app[site_id] = self.protocol_of(site_id)
        return dict(self._app)

    def deactivate(self, site_ids: Iterable[str]) -> None:
        """Drop sites with no remaining active transactions from APP."""
        for site_id in site_ids:
            self._app.pop(site_id, None)

    @property
    def app(self) -> Mapping[str, str]:
        """Read-only snapshot of the active participants' protocols."""
        return dict(self._app)

    # -- crash behaviour ---------------------------------------------------------

    def crash(self) -> None:
        """A crash loses the volatile APP view; the PCP itself is stable."""
        self._app.clear()

    def snapshot(self) -> dict[str, str]:
        """Copy of the full stable PCP table."""
        return dict(self._pcp)

    def __len__(self) -> int:
        return len(self._pcp)

    def __repr__(self) -> str:
        return f"CommitProtocolDirectory(sites={len(self._pcp)}, app={len(self._app)})"
