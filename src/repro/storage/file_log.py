"""File-backed stable log: fsync'd append-only JSONL.

:class:`FileStableLog` gives :class:`~repro.storage.stable_log.StableLog`
a real durable medium so a *live* site (``repro.rt``) survives process
restarts: every force writes the buffered records as JSON lines and
``fsync``\\ s the file before the in-memory stable transition happens —
the on-disk suffix is always at least as fresh as what the protocol
layer believes is stable. A new instance opened on the same path
reloads the stable records, which is exactly the view a restarted
process gets.

The simulator keeps using the in-memory base class by default; this
subclass changes *where* stable records live, never *when* they become
stable, so it can also run under the simulator (the unit tests do) with
byte-identical protocol behaviour.

Garbage collection compacts the file by atomic rewrite (tmp + rename),
matching the base class's logical record removal.

Crash-tail discipline: each persist writes its whole batch as ONE blob
(one buffered write, one flush, one fsync), so under process-crash
semantics — the failure model of the live runtime, where whatever
reached the OS page cache survives the process — a batch is on disk
either whole or not at all. A *torn tail* (a trailing line that does
not parse, the residue of a device-level crash mid-write) is discarded
and truncated away at load time instead of refusing to boot; malformed
lines anywhere *before* the tail still mean corruption and raise.

:class:`GroupCommitFileLog` layers the PR-3 group-commit window engine
over this file medium: concurrent ``force_append_async`` requests
coalesce into one blob write + one ``os.fsync`` per window, which is
the live runtime's durability-batching hot path.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Optional

from repro.errors import StorageError
from repro.storage.group_commit import GroupCommitConfig, GroupCommitLog
from repro.storage.log_records import LogRecord, RecordType
from repro.storage.stable_log import StableLog


def record_to_json(record: LogRecord) -> dict[str, Any]:
    """The JSON form of one log record (payload must be JSON-safe)."""
    return {
        "type": record.type.value,
        "txn": record.txn_id,
        "payload": record.payload,
        "lsn": record.lsn,
    }


def record_from_json(data: dict[str, Any]) -> LogRecord:
    """Rebuild a stable record from its JSON form.

    Raises:
        StorageError: on a malformed record dict.
    """
    try:
        record = LogRecord(
            type=RecordType(data["type"]),
            txn_id=data["txn"],
            payload=dict(data["payload"]),
            lsn=data["lsn"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed log record {data!r}: {exc}")
    # Everything on disk got there through a force or flush.
    record.forced = True
    return record


class FileStableLog(StableLog):
    """A stable log whose stable portion is an fsync'd JSONL file.

    Args:
        sim: simulator or live runtime (anything with ``record``).
        site_id: owning site.
        path: the JSONL file; created (with parents) if absent, loaded
            if present — loading *is* the restart story.
        fsync: whether to ``os.fsync`` after each force/flush/compaction.
            On by default; tests may disable it for speed.
    """

    def __init__(
        self,
        sim,
        site_id: str,
        path: Path | str,
        fsync: bool = True,
    ) -> None:
        super().__init__(sim, site_id)
        self._path = Path(path)
        self._fsync = fsync
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if self._path.exists():
            self._load()
        self._fh: Optional[Any] = open(self._path, "a", encoding="utf-8")

    @property
    def path(self) -> Path:
        return self._path

    def _load(self) -> None:
        """Install the on-disk records as the stable portion.

        A trailing line that fails to parse is a *torn tail* — the
        residue of a crash mid-write — and is discarded (and truncated
        from the file, so later appends never concatenate onto partial
        bytes). An unparsable line *followed by further records* cannot
        be a crash artifact and still raises: that is corruption.
        """
        raw = self._path.read_bytes()
        max_lsn = 0
        offset = 0
        good_end = 0
        torn: Optional[tuple[int, str]] = None
        for line_no, line in enumerate(raw.split(b"\n"), start=1):
            start, offset = offset, offset + len(line) + 1
            text = line.strip()
            if not text:
                continue
            if torn is not None:
                raise StorageError(
                    f"{self._path}:{torn[0]}: malformed JSONL: {torn[1]}"
                )
            try:
                data = json.loads(text)
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                torn = (line_no, str(exc))
                continue
            record = record_from_json(data)
            self._stable.append(record)
            if record.lsn is not None:
                max_lsn = max(max_lsn, record.lsn)
            good_end = min(start + len(line) + 1, len(raw))
        if torn is not None:
            with open(self._path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                if self._fsync:
                    os.fsync(fh.fileno())
            self._sim.record(
                self._site_id,
                "log",
                "torn_tail",
                line=torn[0],
                discarded_bytes=len(raw) - good_end,
            )
        self._next_lsn = max_lsn + 1

    # -- durability ----------------------------------------------------------

    def _persist_buffer(self) -> None:
        """Write the volatile buffer to disk and fsync.

        Called *before* the in-memory buffer→stable transition, so a
        record is never reported stable without being on disk. The
        whole buffer goes down as one blob — one buffered write, one
        flush, one fsync — so a process crash anywhere inside this
        method leaves the batch on disk either whole (the write reached
        the OS) or absent, never a torn prefix of complete lines.
        """
        if not self._buffer:
            return
        if self._fh is None:
            raise StorageError(f"log file of {self._site_id!r} is closed")
        blob = "".join(
            json.dumps(record_to_json(record)) + "\n" for record in self._buffer
        )
        self._fh.write(blob)
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def force(self) -> None:
        self._require_open()
        self._persist_buffer()
        super().force()

    def flush(self) -> int:
        self._require_open()
        self._persist_buffer()
        return super().flush()

    # -- crash / recovery -----------------------------------------------------

    def crash(self) -> int:
        """Process death: the buffer (never written) is lost; the file
        handle closes. The on-disk suffix is untouched — that is the
        state a restarted process will reload."""
        lost = super().crash()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return lost

    def reopen(self) -> None:
        super().reopen()
        self._fh = open(self._path, "a", encoding="utf-8")

    # -- garbage collection ----------------------------------------------------

    def garbage_collect(self, txn_id: str) -> int:
        collected = super().garbage_collect(txn_id)
        if collected:
            self._compact()
        return collected

    def garbage_collect_where(self, keep: Callable[[LogRecord], bool]) -> int:
        collected = super().garbage_collect_where(keep)
        if collected:
            self._compact()
        return collected

    def _compact(self) -> None:
        """Atomically rewrite the file from the surviving stable records."""
        if self._fh is not None:
            self._fh.close()
        tmp_path = self._path.with_suffix(self._path.suffix + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as tmp:
            for record in self._stable:
                tmp.write(json.dumps(record_to_json(record)) + "\n")
            tmp.flush()
            if self._fsync:
                os.fsync(tmp.fileno())
        os.replace(tmp_path, self._path)
        if self._fsync:
            # Make the rename itself durable.
            dir_fd = os.open(self._path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        if self._fh is not None:
            self._fh = open(self._path, "a", encoding="utf-8")

    def close(self) -> None:
        """Release the file handle (end of process, not a crash)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        return (
            f"FileStableLog(site={self._site_id!r}, path={str(self._path)!r}, "
            f"stable={len(self._stable)}, buffered={len(self._buffer)})"
        )


class GroupCommitFileLog(GroupCommitLog, FileStableLog):
    """Group-commit window coalescing over the fsync'd JSONL file.

    The live runtime's durability-batching engine: concurrent
    :meth:`~repro.storage.stable_log.StableLog.force_append_async`
    requests within one window (bounded by
    :class:`~repro.storage.group_commit.GroupCommitConfig`'s
    ``max_delay``/``max_batch``) are appended immediately but persisted
    by a *single* blob write + ``os.fsync`` when the window closes —
    the flusher is the window-close timer, which the
    :class:`~repro.rt.runtime.LiveRuntime` runs as a real asyncio
    timer. Completion callbacks (send the vote, send the ack, record
    the decision) fire only once the batch is durable, exactly the
    discipline the PR-3 conformance suite proves behavior-preserving.

    Crash semantics compose from both parents and stay all-or-nothing:
    a crash mid-window discards the whole batch and its callbacks
    (:class:`GroupCommitLog`), and the batch reaches the file as one
    blob (:meth:`FileStableLog._persist_buffer`), so recovery sees it
    fully forced or not at all — never torn.
    """

    def __init__(
        self,
        sim,
        site_id: str,
        path: Path | str,
        config: Optional[GroupCommitConfig] = None,
        fsync: bool = True,
    ) -> None:
        FileStableLog.__init__(self, sim, site_id, path, fsync=fsync)
        self._init_group_commit(config)

    def __repr__(self) -> str:
        return (
            f"GroupCommitFileLog(site={self._site_id!r}, "
            f"path={str(self._path)!r}, stable={len(self._stable)}, "
            f"buffered={len(self._buffer)}, forces={self.force_count}, "
            f"requests={self.force_requests})"
        )
