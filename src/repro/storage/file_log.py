"""File-backed stable log: fsync'd append-only WAL (JSONL or binary).

:class:`FileStableLog` gives :class:`~repro.storage.stable_log.StableLog`
a real durable medium so a *live* site (``repro.rt``) survives process
restarts: every force writes the buffered records as one blob and
``fsync``\\ s the file before the in-memory stable transition happens —
the on-disk suffix is always at least as fresh as what the protocol
layer believes is stable. A new instance opened on the same path
reloads the stable records, which is exactly the view a restarted
process gets.

The simulator keeps using the in-memory base class by default; this
subclass changes *where* stable records live, never *when* they become
stable, so it can also run under the simulator (the unit tests do) with
byte-identical protocol behaviour.

Two on-disk encodings sit behind one seam (``codec=``):

* ``json`` — the original JSONL: one ``record_to_json`` dict per line.
* ``binary`` — a :data:`WAL_MAGIC` file header, then one frame per
  record: a ``>II`` header (body length, CRC-32 of the body) followed
  by the packed ``[type, txn, lsn, payload]`` tuple
  (:mod:`repro.packing`). The magic's first byte is invalid UTF-8, so
  a json-configured site opening a binary WAL (or vice versa) fails
  loudly at load time instead of misparsing records.

Garbage collection compacts the file by atomic rewrite (tmp + rename),
matching the base class's logical record removal; the surviving batch
is encoded by the same :func:`encode_records` helper as the persist
path and written as a single blob.

Crash-tail discipline: each persist writes its whole batch as ONE blob
(one buffered write, one flush, one fsync), so under process-crash
semantics — the failure model of the live runtime, where whatever
reached the OS page cache survives the process — a batch is on disk
either whole or not at all. A *torn tail* (a trailing JSONL line that
does not parse, or a trailing binary frame that is incomplete or fails
its CRC — the residue of a device-level crash mid-write) is discarded
and truncated away at load time instead of refusing to boot; a bad
record anywhere *before* the tail still means corruption and raises.

:class:`GroupCommitFileLog` layers the PR-3 group-commit window engine
over this file medium: concurrent ``force_append_async`` requests
coalesce into one blob write + one ``os.fsync`` per window, which is
the live runtime's durability-batching hot path.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.errors import StorageError
from repro.packing import PackError, pack_value, unpack_value
from repro.storage.group_commit import GroupCommitConfig, GroupCommitLog
from repro.storage.log_records import LogRecord, RecordType
from repro.storage.stable_log import StableLog

#: The WAL codec vocabulary (mirrors the wire's ``--codec`` values).
WAL_CODECS = ("json", "binary")

#: File header of a binary WAL. The leading byte is invalid UTF-8 (and
#: invalid JSON), so codec/file mismatches are detected, not misparsed.
WAL_MAGIC = b"\xb2RWAL1\r\n"

#: Per-record binary frame header: body length + CRC-32 of the body.
_REC_HEADER = struct.Struct(">II")


def record_to_json(record: LogRecord) -> dict[str, Any]:
    """The JSON form of one log record (payload must be JSON-safe)."""
    return {
        "type": record.type.value,
        "txn": record.txn_id,
        "payload": record.payload,
        "lsn": record.lsn,
    }


def record_from_json(data: dict[str, Any]) -> LogRecord:
    """Rebuild a stable record from its JSON form.

    Raises:
        StorageError: on a malformed record dict.
    """
    try:
        record = LogRecord(
            type=RecordType(data["type"]),
            txn_id=data["txn"],
            payload=dict(data["payload"]),
            lsn=data["lsn"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed log record {data!r}: {exc}")
    # Everything on disk got there through a force or flush.
    record.forced = True
    return record


# -- record batch encoding (shared by persist and compaction) ----------------


def encode_records(records: Sequence[LogRecord], codec: str = "json") -> bytes:
    """Encode a batch of records as one appendable blob.

    This is THE encode path: both the (group-commit) persist blob and
    the GC compaction rewrite go through it, so the two can never
    drift. The blob never includes the binary :data:`WAL_MAGIC` — the
    caller owns the file header.
    """
    if codec == "json":
        return "".join(
            json.dumps(record_to_json(record)) + "\n" for record in records
        ).encode("utf-8")
    if codec == "binary":
        parts = []
        for record in records:
            try:
                body = pack_value(
                    [record.type.value, record.txn_id, record.lsn, record.payload]
                )
            except PackError as exc:
                raise StorageError(
                    f"record of {record.txn_id!r} is not binary-encodable: {exc}"
                )
            parts.append(_REC_HEADER.pack(len(body), zlib.crc32(body)))
            parts.append(body)
        return b"".join(parts)
    raise StorageError(f"unknown WAL codec {codec!r} (expected one of {WAL_CODECS})")


def _record_from_binary(value: Any) -> LogRecord:
    if not isinstance(value, list) or len(value) != 4:
        raise StorageError(f"malformed log record {value!r}: not a 4-tuple")
    type_value, txn_id, lsn, payload = value
    if not isinstance(payload, dict):
        raise StorageError(f"malformed log record {value!r}: payload not a dict")
    return record_from_json(
        {"type": type_value, "txn": txn_id, "payload": payload, "lsn": lsn}
    )


def sniff_wal_codec(raw: bytes) -> str:
    """Which codec wrote these WAL bytes (binary is magic-marked)."""
    return "binary" if raw[: len(WAL_MAGIC)] == WAL_MAGIC else "json"


def decode_wal(
    raw: bytes, codec: str, origin: str = "WAL"
) -> tuple[list[LogRecord], int, Optional[tuple[str, int]]]:
    """Decode a whole WAL image.

    Returns:
        ``(records, good_end, torn)`` — the records up to the last
        clean boundary, the byte offset of that boundary (truncate the
        file there to drop the tail), and ``None`` or a
        ``(description, position)`` pair describing the torn tail.

    Raises:
        StorageError: on a codec/file mismatch, or corruption *before*
            the tail (which cannot be a crash artifact of whole-blob
            appends and must not be silently dropped).
    """
    sniffed = sniff_wal_codec(raw)
    if codec == "json":
        if sniffed == "binary":
            raise StorageError(
                f"{origin} was written by the binary codec but this site is "
                f"configured codec='json'; restart with --codec binary"
            )
        return _decode_jsonl(raw, origin)
    if codec != "binary":
        raise StorageError(
            f"unknown WAL codec {codec!r} (expected one of {WAL_CODECS})"
        )
    if sniffed == "json":
        if not raw:
            return [], 0, None
        if WAL_MAGIC.startswith(raw):
            # A crash tore the very first blob mid-magic: nothing was
            # ever stable, truncate to empty.
            return [], 0, ("torn file header", 0)
        raise StorageError(
            f"{origin} was written by the json codec but this site is "
            f"configured codec='binary'; restart with --codec json"
        )
    return _decode_binary(raw, origin)


def _decode_jsonl(
    raw: bytes, origin: str
) -> tuple[list[LogRecord], int, Optional[tuple[str, int]]]:
    records: list[LogRecord] = []
    offset = 0
    good_end = 0
    torn: Optional[tuple[int, str]] = None
    for line_no, line in enumerate(raw.split(b"\n"), start=1):
        start, offset = offset, offset + len(line) + 1
        text = line.strip()
        if not text:
            continue
        if torn is not None:
            raise StorageError(
                f"{origin}:{torn[0]}: malformed JSONL: {torn[1]}"
            )
        try:
            data = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            torn = (line_no, str(exc))
            continue
        records.append(record_from_json(data))
        good_end = min(start + len(line) + 1, len(raw))
    if torn is not None:
        return records, good_end, (f"line {torn[0]}: {torn[1]}", torn[0])
    return records, len(raw), None


def _decode_binary(
    raw: bytes, origin: str
) -> tuple[list[LogRecord], int, Optional[tuple[str, int]]]:
    records: list[LogRecord] = []
    offset = len(WAL_MAGIC)
    good_end = offset
    frame_no = 0
    while offset < len(raw):
        frame_no += 1
        header_end = offset + _REC_HEADER.size
        if header_end > len(raw):
            return records, good_end, (f"frame {frame_no}: truncated header", frame_no)
        length, crc = _REC_HEADER.unpack_from(raw, offset)
        body_end = header_end + length
        if body_end > len(raw):
            return records, good_end, (f"frame {frame_no}: truncated body", frame_no)
        body = raw[header_end:body_end]
        if zlib.crc32(body) != crc:
            if body_end == len(raw):
                return records, good_end, (f"frame {frame_no}: CRC mismatch", frame_no)
            raise StorageError(
                f"{origin}: frame {frame_no} fails its CRC with further "
                f"records after it — corruption, not a crash tail"
            )
        try:
            value = unpack_value(body)
        except PackError as exc:
            if body_end == len(raw):
                return records, good_end, (f"frame {frame_no}: {exc}", frame_no)
            raise StorageError(f"{origin}: frame {frame_no} malformed: {exc}")
        records.append(_record_from_binary(value))
        offset = good_end = body_end
    return records, good_end, None


def load_wal_records(path: Path | str) -> list[LogRecord]:
    """Read a WAL file without opening a log on it (codec-sniffing).

    Tolerates a torn tail (the partial record is skipped, the file is
    left untouched); raises :class:`StorageError` on interior
    corruption. Used by the multiprocess supervisor to reconstruct a
    dead child's stable view from disk.
    """
    path = Path(path)
    raw = path.read_bytes()
    records, _, _ = decode_wal(raw, sniff_wal_codec(raw), origin=str(path))
    return records


class FileStableLog(StableLog):
    """A stable log whose stable portion is an fsync'd WAL file.

    Args:
        sim: simulator or live runtime (anything with ``record``).
        site_id: owning site.
        path: the WAL file; created (with parents) if absent, loaded
            if present — loading *is* the restart story.
        fsync: whether to ``os.fsync`` after each force/flush/compaction.
            On by default; tests may disable it for speed.
        codec: on-disk encoding, ``"json"`` (JSONL) or ``"binary"``.
            Opening a file written by the other codec raises.
    """

    def __init__(
        self,
        sim,
        site_id: str,
        path: Path | str,
        fsync: bool = True,
        codec: str = "json",
    ) -> None:
        super().__init__(sim, site_id)
        if codec not in WAL_CODECS:
            raise StorageError(
                f"unknown WAL codec {codec!r} (expected one of {WAL_CODECS})"
            )
        self._path = Path(path)
        self._fsync = fsync
        self._codec = codec
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if self._path.exists():
            self._load()
        self._fh: Optional[Any] = open(self._path, "ab")

    @property
    def path(self) -> Path:
        return self._path

    @property
    def codec(self) -> str:
        return self._codec

    def _load(self) -> None:
        """Install the on-disk records as the stable portion.

        A torn tail — the residue of a crash mid-write — is discarded
        (and truncated from the file, so later appends never
        concatenate onto partial bytes). Corruption *before* the tail
        cannot be a crash artifact and still raises.
        """
        raw = self._path.read_bytes()
        records, good_end, torn = decode_wal(
            raw, self._codec, origin=str(self._path)
        )
        max_lsn = 0
        for record in records:
            self._stable.append(record)
            if record.lsn is not None:
                max_lsn = max(max_lsn, record.lsn)
        if torn is not None:
            description, position = torn
            with open(self._path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                if self._fsync:
                    os.fsync(fh.fileno())
            self._sim.record(
                self._site_id,
                "log",
                "torn_tail",
                line=position,
                discarded_bytes=len(raw) - good_end,
            )
        self._next_lsn = max_lsn + 1

    # -- durability ----------------------------------------------------------

    def _persist_buffer(self) -> None:
        """Write the volatile buffer to disk and fsync.

        Called *before* the in-memory buffer→stable transition, so a
        record is never reported stable without being on disk. The
        whole buffer goes down as one blob — one buffered write, one
        flush, one fsync — so a process crash anywhere inside this
        method leaves the batch on disk either whole (the write reached
        the OS) or absent, never a torn prefix of complete records.
        """
        if not self._buffer:
            return
        if self._fh is None:
            raise StorageError(f"log file of {self._site_id!r} is closed")
        blob = encode_records(self._buffer, self._codec)
        if self._codec == "binary" and self._fh.tell() == 0:
            blob = WAL_MAGIC + blob
        self._fh.write(blob)
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def force(self) -> None:
        self._require_open()
        self._persist_buffer()
        super().force()

    def flush(self) -> int:
        self._require_open()
        self._persist_buffer()
        return super().flush()

    # -- crash / recovery -----------------------------------------------------

    def crash(self) -> int:
        """Process death: the buffer (never written) is lost; the file
        handle closes. The on-disk suffix is untouched — that is the
        state a restarted process will reload."""
        lost = super().crash()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return lost

    def reopen(self) -> None:
        super().reopen()
        self._fh = open(self._path, "ab")

    # -- garbage collection ----------------------------------------------------

    def garbage_collect(self, txn_id: str) -> int:
        collected = super().garbage_collect(txn_id)
        if collected:
            self._compact()
        return collected

    def garbage_collect_where(self, keep: Callable[[LogRecord], bool]) -> int:
        collected = super().garbage_collect_where(keep)
        if collected:
            self._compact()
        return collected

    def _compact(self) -> None:
        """Atomically rewrite the file from the surviving stable records.

        The surviving batch is serialized by the same
        :func:`encode_records` helper as the persist path and written
        as ONE blob — a compaction is one buffered write + one fsync
        regardless of how many records survive.
        """
        if self._fh is not None:
            self._fh.close()
        tmp_path = self._path.with_suffix(self._path.suffix + ".tmp")
        blob = encode_records(self._stable, self._codec)
        if self._codec == "binary":
            blob = WAL_MAGIC + blob
        with open(tmp_path, "wb") as tmp:
            tmp.write(blob)
            tmp.flush()
            if self._fsync:
                os.fsync(tmp.fileno())
        os.replace(tmp_path, self._path)
        if self._fsync:
            # Make the rename itself durable.
            dir_fd = os.open(self._path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        if self._fh is not None:
            self._fh = open(self._path, "ab")

    def close(self) -> None:
        """Release the file handle (end of process, not a crash)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        return (
            f"FileStableLog(site={self._site_id!r}, path={str(self._path)!r}, "
            f"stable={len(self._stable)}, buffered={len(self._buffer)}, "
            f"codec={self._codec!r})"
        )


class GroupCommitFileLog(GroupCommitLog, FileStableLog):
    """Group-commit window coalescing over the fsync'd WAL file.

    The live runtime's durability-batching engine: concurrent
    :meth:`~repro.storage.stable_log.StableLog.force_append_async`
    requests within one window (bounded by
    :class:`~repro.storage.group_commit.GroupCommitConfig`'s
    ``max_delay``/``max_batch``) are appended immediately but persisted
    by a *single* blob write + ``os.fsync`` when the window closes —
    the flusher is the window-close timer, which the
    :class:`~repro.rt.runtime.LiveRuntime` runs as a real asyncio
    timer. Completion callbacks (send the vote, send the ack, record
    the decision) fire only once the batch is durable, exactly the
    discipline the PR-3 conformance suite proves behavior-preserving.

    Crash semantics compose from both parents and stay all-or-nothing:
    a crash mid-window discards the whole batch and its callbacks
    (:class:`GroupCommitLog`), and the batch reaches the file as one
    blob (:meth:`FileStableLog._persist_buffer`), so recovery sees it
    fully forced or not at all — never torn. Both properties are
    codec-independent: the blob is just :func:`encode_records` under
    either encoding.
    """

    def __init__(
        self,
        sim,
        site_id: str,
        path: Path | str,
        config: Optional[GroupCommitConfig] = None,
        fsync: bool = True,
        codec: str = "json",
    ) -> None:
        FileStableLog.__init__(self, sim, site_id, path, fsync=fsync, codec=codec)
        self._init_group_commit(config)

    def __repr__(self) -> str:
        return (
            f"GroupCommitFileLog(site={self._site_id!r}, "
            f"path={str(self._path)!r}, stable={len(self._stable)}, "
            f"buffered={len(self._buffer)}, forces={self.force_count}, "
            f"requests={self.force_requests}, codec={self._codec!r})"
        )
