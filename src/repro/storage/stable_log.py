"""Write-ahead stable log with force semantics and crash truncation.

A :class:`StableLog` models one site's log device:

* ``append`` puts a record in a *volatile* buffer;
* ``force`` flushes the buffer to the stable portion and blocks the
  caller (conceptually) until it is durable — we count forces because
  they are the dominant cost the presumed protocols compete on;
* ``crash`` discards the volatile buffer: non-forced records are lost,
  exactly the window the paper's adversarial scenarios exploit;
* ``garbage_collect`` logically removes a terminated transaction's
  records once an END record (or a protocol presumption) covers them.

The log also records ``log.append`` / ``log.force`` trace events so the
figure-flow experiments can regenerate the paper's diagrams.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import LogClosedError, StorageError
from repro.sim.kernel import Simulator
from repro.storage.log_records import LogRecord, RecordType


class StableLog:
    """One site's write-ahead log."""

    def __init__(self, sim: Simulator, site_id: str) -> None:
        self._sim = sim
        self._site_id = site_id
        self._stable: list[LogRecord] = []
        self._buffer: list[LogRecord] = []
        self._next_lsn = 1
        self._open = True
        # Cost counters.
        self.force_count = 0
        self.append_count = 0
        self.flush_count = 0
        self.gc_record_count = 0

    # -- status -------------------------------------------------------------

    @property
    def site_id(self) -> str:
        return self._site_id

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def defers_forces(self) -> bool:
        """Whether :meth:`force_append_async` may complete later.

        The base log forces synchronously, so completion callbacks run
        before ``force_append_async`` returns. A deferring log (see
        :class:`~repro.storage.group_commit.GroupCommitLog`) coalesces
        requests and runs the callbacks when the batch window closes.
        """
        return False

    @property
    def stable_record_count(self) -> int:
        """Records that have reached stable storage (crash-survivors).

        ``stable_record_count + buffered_record_count`` is the total
        record population; :meth:`force`/:meth:`flush` move records from
        the buffered side to the stable side, :meth:`crash` discards the
        buffered side, and :meth:`garbage_collect` shrinks the stable
        side only.
        """
        return len(self._stable)

    @property
    def buffered_record_count(self) -> int:
        """Records still in the volatile buffer — exactly what a crash
        at this instant would lose."""
        return len(self._buffer)

    # -- writing ------------------------------------------------------------

    def append(self, record: LogRecord) -> LogRecord:
        """Append ``record`` to the volatile buffer (non-forced write)."""
        self._require_open()
        record.lsn = self._next_lsn
        self._next_lsn += 1
        self._buffer.append(record)
        self.append_count += 1
        self._sim.record(
            self._site_id,
            "log",
            "append",
            type=record.type.value,
            txn=record.txn_id,
            lsn=record.lsn,
        )
        return record

    def force(self) -> None:
        """Synchronously flush the volatile buffer to stable storage.

        Every invocation is a *protocol cost*: ``force_count`` counts
        the write barrier itself, so it is incremented (and a
        ``log.force`` trace event recorded, with ``flushed=0``) even
        when the buffer happens to be empty — the caller still paid for
        the device round trip. Contrast :meth:`flush`, which models free
        background I/O and is a strict no-op (no counter, no trace) on
        an empty buffer. After a force ``buffered_record_count`` is 0
        and every previously buffered record counts toward
        ``stable_record_count``.
        """
        self._require_open()
        self.force_count += 1
        for record in self._buffer:
            record.forced = True
            self._stable.append(record)
        flushed = len(self._buffer)
        self._buffer.clear()
        self._sim.record(
            self._site_id,
            "log",
            "force",
            flushed=flushed,
        )

    def force_append(self, record: LogRecord) -> LogRecord:
        """Append ``record`` and immediately force the log."""
        self.append(record)
        self.force()
        return record

    def force_append_async(
        self,
        record: LogRecord,
        on_stable: Optional[Callable[[], None]] = None,
    ) -> LogRecord:
        """Append ``record`` and request a force; notify when stable.

        The base log performs the force synchronously, so ``on_stable``
        (when given) runs before this method returns and the call is
        behaviourally identical to :meth:`force_append`. A deferring
        log (:attr:`defers_forces`) instead coalesces concurrent
        requests into one force per batch window and runs ``on_stable``
        once the window closes — the group-commit discipline: callers
        must not act on the record's durability (send a vote, a
        decision, an ack) before the callback fires.
        """
        self.append(record)
        self.force()
        if on_stable is not None:
            on_stable()
        return record

    def flush(self) -> int:
        """Background flush: buffered records become stable.

        Unlike :meth:`force`, a flush is not a protocol cost — it
        models the log buffer being written out as a side effect of
        unrelated activity ("lazily"), so it is counted separately:
        ``flush_count`` is incremented (and a ``log.flush`` trace event
        recorded) only when at least one record actually moved from the
        buffer to stable storage. An empty-buffer flush is free and
        leaves no trace, unlike an empty-buffer :meth:`force`.

        Returns:
            The number of records flushed.
        """
        self._require_open()
        flushed = len(self._buffer)
        if flushed:
            for record in self._buffer:
                record.forced = True
                self._stable.append(record)
            self._buffer.clear()
            self.flush_count += 1
            self._sim.record(self._site_id, "log", "flush", flushed=flushed)
        return flushed

    # -- crash / recovery -----------------------------------------------------

    def crash(self) -> int:
        """Simulate a site crash: the volatile buffer is lost.

        Returns:
            The number of records that were lost.
        """
        lost = len(self._buffer)
        self._buffer.clear()
        self._open = False
        self._sim.record(self._site_id, "log", "crash", lost_records=lost)
        return lost

    def reopen(self) -> None:
        """Re-open the log after a crash (recovery reads the stable part)."""
        if self._open:
            raise StorageError(f"log of {self._site_id!r} is already open")
        self._open = True
        self._sim.record(self._site_id, "log", "reopen")

    # -- reading ------------------------------------------------------------

    def stable_records(self) -> tuple[LogRecord, ...]:
        """Records guaranteed to survive a crash, in LSN order."""
        return tuple(self._stable)

    def records_for(self, txn_id: str) -> tuple[LogRecord, ...]:
        """Stable records belonging to ``txn_id``, in LSN order."""
        return tuple(r for r in self._stable if r.txn_id == txn_id)

    def has_record(self, txn_id: str, record_type: RecordType) -> bool:
        """True if a stable record of the given type exists for the txn."""
        return any(
            r.txn_id == txn_id and r.type == record_type for r in self._stable
        )

    def last_record(
        self, txn_id: str, record_type: Optional[RecordType] = None
    ) -> Optional[LogRecord]:
        """Latest stable record for the txn (optionally of one type)."""
        for record in reversed(self._stable):
            if record.txn_id != txn_id:
                continue
            if record_type is None or record.type == record_type:
                return record
        return None

    def transactions(self) -> set[str]:
        """Ids of all transactions with at least one stable record."""
        return {r.txn_id for r in self._stable if r.txn_id}

    def uncollected_transactions(self) -> set[str]:
        """Transactions whose records are still occupying the stable log."""
        return self.transactions()

    # -- garbage collection ----------------------------------------------------

    def garbage_collect(self, txn_id: str) -> int:
        """Remove every stable record of ``txn_id``.

        The caller (the protocol layer) is responsible for invoking this
        only when the protocol's rules allow it — typically after an END
        record was written, or when a presumption covers the outcome.

        Returns:
            The number of records collected.
        """
        before = len(self._stable)
        self._stable = [r for r in self._stable if r.txn_id != txn_id]
        collected = before - len(self._stable)
        if collected:
            self.gc_record_count += collected
            self._sim.record(
                self._site_id, "log", "gc", txn=txn_id, collected=collected
            )
        return collected

    def garbage_collect_where(self, keep: Callable[[LogRecord], bool]) -> int:
        """Remove stable records for which ``keep`` returns False."""
        before = len(self._stable)
        self._stable = [r for r in self._stable if keep(r)]
        collected = before - len(self._stable)
        self.gc_record_count += collected
        return collected

    # -- internals --------------------------------------------------------------

    def _require_open(self) -> None:
        if not self._open:
            raise LogClosedError(
                f"log of {self._site_id!r} is closed (site crashed)"
            )

    def __repr__(self) -> str:
        return (
            f"StableLog(site={self._site_id!r}, stable={len(self._stable)}, "
            f"buffered={len(self._buffer)}, forces={self.force_count})"
        )


def count_forced(records: Iterable[LogRecord]) -> int:
    """Number of records in ``records`` that reached stable storage."""
    return sum(1 for r in records if r.forced)
