"""In-memory protocol table.

Each coordinator (and participant) keeps per-transaction volatile state
in a *protocol table*. The table is the object the paper's operational
correctness criterion (Definition 1, item 2) constrains: the coordinator
must *eventually* be able to delete every terminated transaction from
it. We therefore track residency statistics — peak size, inserts,
deletes and the set of entries that a protocol has marked as
un-forgettable — so Theorem 2's unbounded growth is directly measurable.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.sim.kernel import Simulator


class ProtocolTable:
    """Volatile per-transaction protocol state for one site."""

    def __init__(self, sim: Simulator, site_id: str, role: str = "coordinator") -> None:
        self._sim = sim
        self._site_id = site_id
        self._role = role
        self._entries: dict[str, Any] = {}
        self.peak_size = 0
        self.insert_count = 0
        self.delete_count = 0

    @property
    def role(self) -> str:
        """``"coordinator"`` or ``"participant"`` — tags forget events."""
        return self._role

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, txn_id: str) -> bool:
        return txn_id in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def insert(self, txn_id: str, entry: Any) -> None:
        """Add (or replace) the entry for ``txn_id``."""
        if txn_id not in self._entries:
            self.insert_count += 1
        self._entries[txn_id] = entry
        self.peak_size = max(self.peak_size, len(self._entries))

    def get(self, txn_id: str) -> Optional[Any]:
        """The entry for ``txn_id``, or ``None`` if forgotten/unknown."""
        return self._entries.get(txn_id)

    def delete(self, txn_id: str) -> bool:
        """Forget ``txn_id``; True if an entry was actually removed.

        Emits a ``protocol.forget`` trace event — the event the
        SafeState predicate (Definition 2) is anchored on.
        """
        if txn_id not in self._entries:
            return False
        del self._entries[txn_id]
        self.delete_count += 1
        self._sim.record(
            self._site_id, "protocol", "forget", txn=txn_id, role=self._role
        )
        return True

    def clear_volatile(self) -> int:
        """Drop every entry (a crash wipes the table). Returns count."""
        lost = len(self._entries)
        self._entries.clear()
        return lost

    def entries(self) -> dict[str, Any]:
        """Snapshot copy of the table contents."""
        return dict(self._entries)

    def __repr__(self) -> str:
        return (
            f"ProtocolTable(site={self._site_id!r}, size={len(self)}, "
            f"peak={self.peak_size})"
        )
