"""Stable storage: write-ahead logs, protocol tables, PCP/APP tables."""

from repro.storage.file_log import FileStableLog, GroupCommitFileLog
from repro.storage.group_commit import GroupCommitConfig, GroupCommitLog
from repro.storage.log_records import LogRecord, RecordType
from repro.storage.pcp import CommitProtocolDirectory
from repro.storage.protocol_table import ProtocolTable
from repro.storage.stable_log import StableLog

__all__ = [
    "CommitProtocolDirectory",
    "FileStableLog",
    "GroupCommitConfig",
    "GroupCommitFileLog",
    "GroupCommitLog",
    "LogRecord",
    "ProtocolTable",
    "RecordType",
    "StableLog",
]
