"""Local (single-site) crash recovery.

Restart analysis follows the textbook redo/no-undo discipline our
engine's write path establishes:

* updates are durable (forced) no later than the PREPARED record;
* the recovered working state is the durable snapshot plus the redo of
  every transaction with a stable COMMIT record;
* transactions with a stable PREPARED record but no stable decision are
  *in doubt*: their updates are withheld, their locks re-acquired, and
  the commit protocol layer later resolves them (by inquiry or by the
  coordinator re-sending the decision);
* transactions with only UPDATE records (no PREPARED) were active at
  the crash and are implicitly aborted — the paper's "hidden
  presumption" at work locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.db.kv import KVStore
from repro.db.local_tm import LocalTransactionManager
from repro.storage.log_records import RecordType
from repro.storage.stable_log import StableLog


@dataclass
class LocalRecoveryReport:
    """Outcome of analyzing one site's stable log at restart."""

    committed: set[str] = field(default_factory=set)
    aborted: set[str] = field(default_factory=set)
    in_doubt: dict[str, dict[str, Any]] = field(default_factory=dict)
    implicitly_aborted: set[str] = field(default_factory=set)
    recovered_state: dict[str, Any] = field(default_factory=dict)

    @property
    def in_doubt_count(self) -> int:
        return len(self.in_doubt)


def analyze_log(log: StableLog, durable_state: dict[str, Any]) -> LocalRecoveryReport:
    """Classify logged transactions and compute the redo state.

    Args:
        log: the site's stable log (only stable records are visible).
        durable_state: the KV snapshot as of the last checkpoint.

    Returns:
        A :class:`LocalRecoveryReport`; ``recovered_state`` is the
        working state to install, reflecting committed work only.
    """
    report = LocalRecoveryReport()
    updates: dict[str, list[tuple[str, Any, Any]]] = {}
    coordinators: dict[str, str] = {}
    prepared: set[str] = set()

    for record in log.stable_records():
        txn_id = record.txn_id
        if record.type is RecordType.UPDATE:
            updates.setdefault(txn_id, []).append(
                (record.get("key"), record.get("before"), record.get("after"))
            )
        elif record.type is RecordType.PREPARED:
            prepared.add(txn_id)
            coordinators[txn_id] = record.get("coordinator", "")
        elif record.type is RecordType.COMMIT:
            # Coordinator-side decision records (role "coordinator") are
            # handled by coordinator recovery, not local redo.
            if record.get("by", "participant") == "participant":
                report.committed.add(txn_id)
        elif record.type is RecordType.ABORT:
            if record.get("by", "participant") == "participant":
                report.aborted.add(txn_id)

    for txn_id in prepared:
        if txn_id in report.committed or txn_id in report.aborted:
            continue
        report.in_doubt[txn_id] = {
            "coordinator": coordinators.get(txn_id, ""),
            "updates": updates.get(txn_id, []),
        }

    for txn_id in updates:
        if (
            txn_id not in prepared
            and txn_id not in report.committed
            and txn_id not in report.aborted
        ):
            report.implicitly_aborted.add(txn_id)

    # Redo pass: apply after-images of committed transactions in LSN order.
    state = dict(durable_state)
    for record in log.stable_records():
        if (
            record.type is RecordType.UPDATE
            and record.txn_id in report.committed
        ):
            state[record.get("key")] = record.get("after")
    report.recovered_state = state
    return report


def recover_engine(
    tm: LocalTransactionManager,
    log: StableLog,
    store: KVStore,
) -> LocalRecoveryReport:
    """Bring a crashed engine back up: restart, redo, re-adopt in-doubts."""
    report = analyze_log(log, store.durable_snapshot())
    tm.restart_empty()
    store.load_recovered(report.recovered_state)
    for txn_id, info in report.in_doubt.items():
        tm.adopt_in_doubt(txn_id, info["coordinator"], info["updates"])
    return report
