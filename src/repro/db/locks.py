"""Strict two-phase locking.

The lock manager supports shared and exclusive locks with FIFO waiting.
Lock waits are callback-based (the simulator has no blocking threads):
``acquire`` either grants immediately and returns True, or enqueues the
request and invokes ``on_grant`` when the lock becomes available. A
``no_wait`` acquire raises :class:`~repro.errors.LockError` on conflict,
which doubles as a trivially sound deadlock-avoidance policy for
workloads that need it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import LockError


class LockMode(enum.Enum):
    """Lock modes; SHARED is compatible only with SHARED."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass
class _LockRequest:
    txn_id: str
    mode: LockMode
    on_grant: Optional[Callable[[], None]]


class _KeyLock:
    """Lock state for a single key."""

    __slots__ = ("holders", "mode", "queue")

    def __init__(self) -> None:
        self.holders: set[str] = set()
        self.mode: Optional[LockMode] = None
        self.queue: list[_LockRequest] = []


class LockManager:
    """Per-site lock table implementing strict 2PL."""

    def __init__(self) -> None:
        self._locks: dict[str, _KeyLock] = {}
        self._held_by_txn: dict[str, set[str]] = {}
        self.grant_count = 0
        self.wait_count = 0
        self.denial_count = 0

    # -- queries ---------------------------------------------------------------

    def holders(self, key: str) -> set[str]:
        lock = self._locks.get(key)
        return set(lock.holders) if lock else set()

    def mode(self, key: str) -> Optional[LockMode]:
        lock = self._locks.get(key)
        return lock.mode if lock else None

    def keys_held_by(self, txn_id: str) -> set[str]:
        return set(self._held_by_txn.get(txn_id, set()))

    def waiting_count(self, key: str) -> int:
        lock = self._locks.get(key)
        return len(lock.queue) if lock else 0

    # -- acquisition ---------------------------------------------------------------

    def acquire(
        self,
        txn_id: str,
        key: str,
        mode: LockMode,
        on_grant: Optional[Callable[[], None]] = None,
        no_wait: bool = False,
    ) -> bool:
        """Request ``mode`` on ``key`` for ``txn_id``.

        Returns:
            True if the lock was granted synchronously. False if the
            request was queued (``on_grant`` fires later).

        Raises:
            LockError: on conflict when ``no_wait`` is set, or when the
                request would wait but no ``on_grant`` callback exists.
        """
        lock = self._locks.setdefault(key, _KeyLock())
        if self._grantable(lock, txn_id, mode):
            self._grant(lock, txn_id, key, mode)
            return True
        if no_wait:
            self.denial_count += 1
            raise LockError(
                f"txn {txn_id!r} denied {mode.value} lock on {key!r} "
                f"(held {lock.mode.value if lock.mode else '?'} "
                f"by {sorted(lock.holders)})"
            )
        if on_grant is None:
            self.denial_count += 1
            raise LockError(
                f"txn {txn_id!r} would wait for {key!r} but no on_grant "
                f"callback was supplied"
            )
        self.wait_count += 1
        lock.queue.append(_LockRequest(txn_id, mode, on_grant))
        return False

    def _grantable(self, lock: _KeyLock, txn_id: str, mode: LockMode) -> bool:
        if not lock.holders:
            return True
        if lock.holders == {txn_id}:
            # Re-entrant request (possibly an upgrade by the only holder).
            return True
        if txn_id in lock.holders and mode is LockMode.SHARED:
            return True
        assert lock.mode is not None
        # FIFO fairness: a compatible request still waits behind queued ones.
        return mode.compatible_with(lock.mode) and not lock.queue

    def _grant(self, lock: _KeyLock, txn_id: str, key: str, mode: LockMode) -> None:
        lock.holders.add(txn_id)
        if lock.mode is None or mode is LockMode.EXCLUSIVE:
            lock.mode = mode
        self._held_by_txn.setdefault(txn_id, set()).add(key)
        self.grant_count += 1

    # -- release ----------------------------------------------------------------------

    def release_all(self, txn_id: str) -> list[Callable[[], None]]:
        """Release every lock held by ``txn_id`` (strict 2PL unlock).

        Returns:
            Grant callbacks for requests that became grantable; the
            caller schedules them (keeps lock-manager code re-entrant).
        """
        callbacks: list[Callable[[], None]] = []
        for key in self._held_by_txn.pop(txn_id, set()):
            lock = self._locks.get(key)
            if lock is None or txn_id not in lock.holders:
                continue
            lock.holders.discard(txn_id)
            if not lock.holders:
                lock.mode = None
            callbacks.extend(self._promote_waiters(lock, key))
            if not lock.holders and not lock.queue:
                del self._locks[key]
        return callbacks

    def _promote_waiters(self, lock: _KeyLock, key: str) -> list[Callable[[], None]]:
        callbacks: list[Callable[[], None]] = []
        while lock.queue:
            head = lock.queue[0]
            if lock.holders and not (
                lock.mode is not None and head.mode.compatible_with(lock.mode)
            ):
                break
            lock.queue.pop(0)
            self._grant(lock, head.txn_id, key, head.mode)
            if head.on_grant is not None:
                callbacks.append(head.on_grant)
            if head.mode is LockMode.EXCLUSIVE:
                break
        return callbacks

    def clear(self) -> None:
        """Drop all lock state (a crash wipes the volatile lock table)."""
        self._locks.clear()
        self._held_by_txn.clear()

    def __repr__(self) -> str:
        return (
            f"LockManager(keys={len(self._locks)}, grants={self.grant_count}, "
            f"waits={self.wait_count}, denials={self.denial_count})"
        )
