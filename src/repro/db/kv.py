"""Key-value store with a durable snapshot and a volatile working state.

The *durable* dictionary models the on-disk database as of the last
checkpoint; the *volatile* dictionary is the buffer-cache view that
transactions read and write. A crash discards the volatile state; local
recovery rebuilds it from the durable snapshot plus the stable log
(see ``repro.db.recovery``).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import DatabaseError


class KVStore:
    """Crash-aware key-value store for one site."""

    def __init__(self, initial: Optional[dict[str, Any]] = None) -> None:
        self._durable: dict[str, Any] = dict(initial or {})
        self._volatile: Optional[dict[str, Any]] = dict(self._durable)

    # -- status ---------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self._volatile is not None

    # -- data access ------------------------------------------------------------

    def read(self, key: str) -> Any:
        """Current (volatile) value of ``key``; ``None`` if absent."""
        return self._working().get(key)

    def write(self, key: str, value: Any) -> Any:
        """Set ``key`` to ``value``; returns the previous value."""
        working = self._working()
        before = working.get(key)
        working[key] = value
        return before

    def delete(self, key: str) -> Any:
        """Remove ``key``; returns the previous value."""
        return self._working().pop(key, None)

    def snapshot(self) -> dict[str, Any]:
        """Copy of the current volatile state."""
        return dict(self._working())

    def durable_snapshot(self) -> dict[str, Any]:
        """Copy of the durable (checkpointed) state."""
        return dict(self._durable)

    # -- crash / recovery -----------------------------------------------------------

    def crash(self) -> None:
        """Lose the volatile state."""
        self._volatile = None

    def restart(self) -> None:
        """Come back up with the durable snapshot as working state."""
        self._volatile = dict(self._durable)

    def load_recovered(self, state: dict[str, Any]) -> None:
        """Install a recovery-computed working state."""
        self._volatile = dict(state)

    def checkpoint(self, state: dict[str, Any]) -> None:
        """Persist ``state`` as the new durable snapshot."""
        self._durable = dict(state)

    # -- internals -----------------------------------------------------------------

    def _working(self) -> dict[str, Any]:
        if self._volatile is None:
            raise DatabaseError("store is down (site crashed)")
        return self._volatile

    def __repr__(self) -> str:
        size = len(self._volatile) if self._volatile is not None else "down"
        return f"KVStore(volatile={size}, durable={len(self._durable)})"
