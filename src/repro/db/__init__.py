"""Miniature per-site database engine.

Each MDBS site runs one of these engines so that subtransactions do
real, recoverable work: writes take strict two-phase locks, produce
undo/redo records in the site's write-ahead log, survive crashes via
redo recovery, and stay locked while in doubt — exactly the substrate
the commit protocols coordinate.
"""

from repro.db.kv import KVStore
from repro.db.local_tm import LocalTransaction, LocalTransactionManager, TxnStatus
from repro.db.locks import LockManager, LockMode
from repro.db.recovery import LocalRecoveryReport, analyze_log, recover_engine

__all__ = [
    "KVStore",
    "LocalRecoveryReport",
    "LocalTransaction",
    "LocalTransactionManager",
    "LockManager",
    "LockMode",
    "TxnStatus",
    "analyze_log",
    "recover_engine",
]
