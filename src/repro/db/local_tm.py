"""Local transaction manager: one per site.

The local TM executes subtransactions against the site's KV store under
strict 2PL, producing undo/redo records in the site's stable log. It
exposes exactly the operations the commit protocols need:

* ``prepare`` — force the log up to and including a PREPARED record,
  entering the in-doubt window (the transaction can then neither commit
  nor abort unilaterally);
* ``commit`` / ``abort`` — enforce a final decision, writing the
  decision record with the forcing discipline the protocol dictates;
* ``forget`` — garbage collect the transaction's records.

Lock conflicts use a no-wait policy by default: a denied lock surfaces
as :class:`~repro.errors.LockError`, which the MDBS layer turns into a
unilateral abort (a "No" vote) — giving workloads a natural source of
aborted transactions, which the presumed protocols treat differently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SiteDownError, TransactionError
from repro.db.kv import KVStore
from repro.db.locks import LockManager, LockMode
from repro.sim.kernel import Simulator
from repro.storage.log_records import (
    LogRecord,
    RecordType,
    decision_record,
    prepared_record,
    update_record,
)
from repro.storage.stable_log import StableLog


class TxnStatus(enum.Enum):
    """Life-cycle states of a local (sub)transaction."""

    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class LocalTransaction:
    """Volatile bookkeeping for one subtransaction at one site."""

    txn_id: str
    coordinator: str = ""
    status: TxnStatus = TxnStatus.ACTIVE
    # (key, before-image, after-image), in execution order.
    updates: list[tuple[str, Any, Any]] = field(default_factory=list)
    # True while the after-images are applied to the volatile store.
    updates_in_store: bool = True
    decision_logged: bool = False
    # True once the decision record is on stable storage (or no record
    # is required: logless sites, unforced "lazy" decisions are never
    # marked). Gates actions that presume durability, e.g. re-sending
    # an ACK for a duplicate decision message while a group-commit
    # window is still open.
    decision_stable: bool = False


class LocalTransactionManager:
    """Executes and terminates subtransactions at a single site."""

    def __init__(
        self,
        sim: Simulator,
        site_id: str,
        log: StableLog,
        store: KVStore,
        locks: Optional[LockManager] = None,
        force_updates: bool = False,
        logless: bool = False,
    ) -> None:
        self._sim = sim
        self._site_id = site_id
        self._log = log
        self._store = store
        self._locks = locks if locks is not None else LockManager()
        # IYV sites force every update record as it is written (the
        # voting phase they skip would otherwise have forced them).
        self._force_updates = force_updates
        # CL sites write nothing locally: their redo records live at
        # the coordinator, pulled back through CL_RECOVER on restart.
        self._logless = logless
        self._txns: dict[str, LocalTransaction] = {}
        self._up = True

    # -- status -------------------------------------------------------------

    @property
    def site_id(self) -> str:
        return self._site_id

    @property
    def locks(self) -> LockManager:
        return self._locks

    @property
    def is_up(self) -> bool:
        return self._up

    def transaction(self, txn_id: str) -> Optional[LocalTransaction]:
        return self._txns.get(txn_id)

    def active_transactions(self) -> list[str]:
        return [t.txn_id for t in self._txns.values() if t.status is TxnStatus.ACTIVE]

    def in_doubt_transactions(self) -> list[str]:
        return [
            t.txn_id for t in self._txns.values() if t.status is TxnStatus.PREPARED
        ]

    # -- execution ------------------------------------------------------------

    def begin(self, txn_id: str, coordinator: str = "") -> LocalTransaction:
        """Start a subtransaction at this site."""
        self._require_up()
        if txn_id in self._txns:
            raise TransactionError(f"txn {txn_id!r} already exists at {self._site_id!r}")
        txn = LocalTransaction(txn_id=txn_id, coordinator=coordinator)
        self._txns[txn_id] = txn
        self._sim.record(self._site_id, "db", "begin", txn=txn_id)
        return txn

    def read(self, txn_id: str, key: str) -> Any:
        """Read ``key`` under a shared lock (no-wait)."""
        self._require_up()
        txn = self._require_active(txn_id)
        self._locks.acquire(txn.txn_id, key, LockMode.SHARED, no_wait=True)
        return self._store.read(key)

    def write(self, txn_id: str, key: str, value: Any) -> None:
        """Write ``key`` under an exclusive lock, logging undo/redo."""
        self._require_up()
        txn = self._require_active(txn_id)
        self._locks.acquire(txn.txn_id, key, LockMode.EXCLUSIVE, no_wait=True)
        before = self._store.write(key, value)
        txn.updates.append((key, before, value))
        if not self._logless:
            record = update_record(txn_id, key, before, value)
            if self._force_updates and self._log.defers_forces:
                self._log.force_append_async(record)
            elif self._force_updates:
                self._log.force_append(record)
            else:
                self._log.append(record)
        self._sim.record(self._site_id, "db", "write", txn=txn_id, key=key)

    # -- termination -----------------------------------------------------------

    def is_read_only(self, txn_id: str) -> bool:
        """True if the transaction exists and has performed no writes."""
        txn = self._txns.get(txn_id)
        return txn is not None and not txn.updates

    def finish_read_only(self, txn_id: str) -> None:
        """Terminate a read-only subtransaction locally (no logging).

        Used by the read-only optimization: the participant votes READ,
        releases its locks immediately and forgets the transaction — a
        read-only subtransaction is consistent with either outcome, so
        no decision, record or acknowledgement is needed.
        """
        self._require_up()
        txn = self._txns.get(txn_id)
        if txn is None:
            return
        if txn.updates:
            raise TransactionError(
                f"txn {txn_id!r} wrote {len(txn.updates)} keys; it is not "
                f"read-only"
            )
        txn.status = TxnStatus.COMMITTED
        self._release(txn)
        del self._txns[txn_id]
        self._sim.record(self._site_id, "db", "read_only_done", txn=txn_id)

    def prepare(
        self,
        txn_id: str,
        on_stable: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Enter the prepared (in-doubt) state; True on success.

        Forces the log so the PREPARED record *and every update record
        before it* are durable — the write-ahead rule participants rely
        on to redo after a crash.

        Args:
            on_stable: invoked once the PREPARED record is stable — the
                point at which a vote may be sent. On a synchronous log
                (and on logless sites, which write nothing) it runs
                before this method returns; on a deferring
                (group-commit) log it runs when the batch window
                closes. It is *dropped* if the site crashes first.
        """
        self._require_up()
        txn = self._txns.get(txn_id)
        if txn is None or txn.status is not TxnStatus.ACTIVE:
            return False
        if not self._logless and self._log.defers_forces:
            record = prepared_record(txn_id, txn.coordinator)
            self._log.force_append_async(record, on_stable)
            txn.status = TxnStatus.PREPARED
            self._sim.record(self._site_id, "db", "prepared", txn=txn_id)
            return True
        if not self._logless:
            self._log.force_append(prepared_record(txn_id, txn.coordinator))
        txn.status = TxnStatus.PREPARED
        self._sim.record(self._site_id, "db", "prepared", txn=txn_id)
        if on_stable is not None:
            on_stable()
        return True

    def commit(
        self,
        txn_id: str,
        force_decision: bool,
        on_stable: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enforce a commit decision.

        Enforcement itself (redo, status change, lock release) is always
        synchronous; only durability of the decision record may lag on a
        deferring log.

        Args:
            force_decision: whether the protocol requires the commit
                record to be force-written (PrN/PrA participants: yes;
                PrC participants: no).
            on_stable: invoked once the decision record is as durable as
                the protocol demands — the point at which an ACK may be
                sent. Runs before return except when ``force_decision``
                on a deferring (group-commit) log, where it runs when
                the batch window closes (dropped if the site crashes
                first). Unforced and logless decisions require no
                durability, so it runs immediately for them.
        """
        self._require_up()
        txn = self._txns.get(txn_id)
        if txn is None:
            # Footnote 5 of the paper: no memory of the transaction means
            # it was already enforced and forgotten; nothing to do.
            if on_stable is not None:
                on_stable()
            return
        if txn.status is TxnStatus.COMMITTED:
            if on_stable is not None:
                on_stable()
            return
        if txn.status is TxnStatus.ABORTED:
            raise TransactionError(
                f"txn {txn_id!r} already aborted at {self._site_id!r}; "
                f"cannot commit"
            )
        notify_now = True
        if not self._logless:
            record = decision_record(txn_id, "commit")
            if force_decision and self._log.defers_forces:
                notify_now = False
                self._log.force_append_async(
                    record, self._decision_stable_callback(txn, on_stable)
                )
            elif force_decision:
                self._log.force_append(record)
                txn.decision_stable = True
            else:
                self._log.append(record)
        else:
            txn.decision_stable = True
        txn.decision_logged = True
        if not txn.updates_in_store:
            # Post-recovery redo: re-apply after-images.
            for key, __, after in txn.updates:
                self._store.write(key, after)
            txn.updates_in_store = True
        txn.status = TxnStatus.COMMITTED
        self._release(txn)
        self._sim.record(self._site_id, "db", "commit", txn=txn_id)
        if notify_now and on_stable is not None:
            on_stable()

    def abort(
        self,
        txn_id: str,
        force_decision: bool,
        on_stable: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enforce an abort decision, undoing any applied updates.

        ``on_stable`` follows the same contract as :meth:`commit`.
        """
        self._require_up()
        txn = self._txns.get(txn_id)
        if txn is None:
            if on_stable is not None:
                on_stable()
            return
        if txn.status is TxnStatus.ABORTED:
            if on_stable is not None:
                on_stable()
            return
        if txn.status is TxnStatus.COMMITTED:
            raise TransactionError(
                f"txn {txn_id!r} already committed at {self._site_id!r}; "
                f"cannot abort"
            )
        if txn.updates_in_store:
            for key, before, __ in reversed(txn.updates):
                if before is None:
                    self._store.delete(key)
                else:
                    self._store.write(key, before)
            txn.updates_in_store = False
        notify_now = True
        if not self._logless:
            record = decision_record(txn_id, "abort")
            if force_decision and self._log.defers_forces:
                notify_now = False
                self._log.force_append_async(
                    record, self._decision_stable_callback(txn, on_stable)
                )
            elif force_decision:
                self._log.force_append(record)
                txn.decision_stable = True
            else:
                self._log.append(record)
        else:
            txn.decision_stable = True
        txn.decision_logged = True
        txn.status = TxnStatus.ABORTED
        self._release(txn)
        self._sim.record(self._site_id, "db", "abort", txn=txn_id)
        if notify_now and on_stable is not None:
            on_stable()

    def committed_snapshot(self) -> dict[str, Any]:
        """Current store state with all *live* transactions undone.

        This is the state a fuzzy checkpoint may persist: effects of
        active and prepared transactions are rolled back via their
        before-images (their redo lives in the log), so garbage
        collecting a terminated transaction's records after
        checkpointing this state can never lose committed data.
        """
        state = self._store.snapshot()
        for txn in self._txns.values():
            if txn.status not in (TxnStatus.ACTIVE, TxnStatus.PREPARED):
                continue
            if not txn.updates_in_store:
                continue
            for key, before, __ in reversed(txn.updates):
                if before is None:
                    state.pop(key, None)
                else:
                    state[key] = before
        return state

    def checkpoint(self) -> None:
        """Persist the committed snapshot as the durable store state."""
        self._store.checkpoint(self.committed_snapshot())

    def drop_volatile(self, txn_id: str) -> None:
        """Drop a *terminated* transaction's volatile entry only.

        Log records are left in place — the participant engine GCs them
        once the decision record is stable.
        """
        txn = self._txns.get(txn_id)
        if txn is not None and txn.status in (
            TxnStatus.COMMITTED,
            TxnStatus.ABORTED,
        ):
            del self._txns[txn_id]

    def apply_redo(self, txn_id: str, updates: list[tuple[str, Any, Any]]) -> None:
        """Install a pulled redo set for a committed transaction (CL).

        Used by log-less (coordinator-log) sites during restart: the
        after-images arrive from the coordinator's log and are applied
        directly — this *is* the local enforcement of the commit, so it
        is traced as one.
        """
        self._require_up()
        for key, __, after in updates:
            self._store.write(key, after)
        self._sim.record(self._site_id, "db", "commit", txn=txn_id, redo=True)

    def forget(self, txn_id: str) -> None:
        """Drop volatile state and garbage collect the txn's log records."""
        self._require_up()
        txn = self._txns.pop(txn_id, None)
        if txn is not None and txn.status in (TxnStatus.ACTIVE, TxnStatus.PREPARED):
            raise TransactionError(
                f"cannot forget txn {txn_id!r} in state {txn.status.value!r}"
            )
        self._log.garbage_collect(txn_id)

    # -- crash / recovery ---------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state (store, locks, txn table)."""
        self._up = False
        self._store.crash()
        self._locks.clear()
        self._txns.clear()

    def restart_empty(self) -> None:
        """Come back up; recovery (``repro.db.recovery``) repopulates us."""
        self._up = True
        self._store.restart()

    def adopt_in_doubt(
        self,
        txn_id: str,
        coordinator: str,
        updates: list[tuple[str, Any, Any]],
    ) -> LocalTransaction:
        """Re-install an in-doubt transaction found in the log at restart.

        The transaction's after-images are *not* in the recovered store
        (recovery only redoes committed work), so ``updates_in_store``
        is False; its exclusive locks are re-acquired to protect the
        in-doubt data.
        """
        self._require_up()
        txn = LocalTransaction(
            txn_id=txn_id,
            coordinator=coordinator,
            status=TxnStatus.PREPARED,
            updates=list(updates),
            updates_in_store=False,
        )
        self._txns[txn_id] = txn
        for key, __, __unused in updates:
            self._locks.acquire(txn_id, key, LockMode.EXCLUSIVE, no_wait=True)
        self._sim.record(self._site_id, "db", "readopt_in_doubt", txn=txn_id)
        return txn

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _decision_stable_callback(
        txn: LocalTransaction,
        on_stable: Optional[Callable[[], None]],
    ) -> Callable[[], None]:
        """Completion for a deferred decision force: mark the txn's
        record stable, then resume the protocol."""

        def stable() -> None:
            txn.decision_stable = True
            if on_stable is not None:
                on_stable()

        return stable

    def _release(self, txn: LocalTransaction) -> None:
        for callback in self._locks.release_all(txn.txn_id):
            self._sim.schedule(0.0, callback, label="lock-grant")

    def _require_up(self) -> None:
        if not self._up:
            raise SiteDownError(f"site {self._site_id!r} is down")

    def _require_active(self, txn_id: str) -> LocalTransaction:
        txn = self._txns.get(txn_id)
        if txn is None:
            raise TransactionError(f"unknown txn {txn_id!r} at {self._site_id!r}")
        if txn.status is not TxnStatus.ACTIVE:
            raise TransactionError(
                f"txn {txn_id!r} is {txn.status.value}, not active"
            )
        return txn
