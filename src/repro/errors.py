"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """A discrete-event-simulation invariant was violated."""


class ClockError(SimulationError):
    """The virtual clock was moved backwards or misused."""


class NetworkError(ReproError):
    """A message could not be constructed, routed or delivered."""


class UnknownNodeError(NetworkError):
    """A message was addressed to a node the network does not know."""


class CodecError(NetworkError):
    """A wire frame or message could not be encoded or decoded."""


class StorageError(ReproError):
    """A stable-storage (write-ahead log) invariant was violated."""


class LogClosedError(StorageError):
    """An append or force was attempted on a crashed (closed) log."""


class ProtocolError(ReproError):
    """An atomic-commit-protocol state machine was driven illegally."""


class ProtocolViolationError(ProtocolError):
    """A message arrived that the protocol specification forbids."""


class UnknownProtocolError(ProtocolError):
    """A protocol name was requested that the registry does not know."""


class DatabaseError(ReproError):
    """A local database engine operation failed."""


class LockError(DatabaseError):
    """A lock request could not be granted (conflict or deadlock)."""


class TransactionError(DatabaseError):
    """A transaction was used after termination or misused."""


class SiteDownError(ReproError):
    """An operation was attempted on a crashed site."""


class CorrectnessViolation(ReproError):
    """A checker detected a violated correctness property.

    Raised (or collected, depending on the checker mode) when a run
    violates atomicity, safe state, or operational correctness.
    """


class AtomicityViolation(CorrectnessViolation):
    """Sites reached inconsistent decisions for the same transaction."""


class SafeStateViolation(CorrectnessViolation):
    """A coordinator forgot a transaction outside a safe state."""


class OperationalCorrectnessViolation(CorrectnessViolation):
    """A protocol retained transaction state that can never be GC'd."""


class WorkloadError(ReproError):
    """A workload specification was invalid."""


class ExperimentError(ReproError):
    """An experiment harness was configured or executed incorrectly."""
