"""Definition 1, executable: functional and operational correctness.

* :func:`check_atomicity` — item 1 of Definition 1 (and the classical
  atomic-commitment agreement property): the coordinator and all the
  participants reach consistent decisions regardless of failures.
* :func:`check_operational_correctness` — items 2 and 3: at the end of
  a quiescent run, every coordinator protocol table is empty, every
  participant has forgotten its subtransactions, and every stable log
  contains no un-garbage-collectable records of terminated
  transactions.

The atomicity check works purely on the :class:`~repro.core.history.History`
(the omniscient observer), so it also works for sites that are still
down at the end of a run. The operational check additionally inspects
live site state through the small :class:`SiteView` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol

from repro.core.events import EventKind, Outcome
from repro.core.history import History
from repro.sim.tracing import TraceRecorder


@dataclass(frozen=True)
class AtomicityViolationRecord:
    """Sites disagreed about (or contradicted) a transaction's outcome."""

    txn_id: str
    outcomes: tuple[tuple[str, str], ...]  # (site, outcome) pairs
    coordinator_decision: Optional[str]

    def __str__(self) -> str:
        sites = ", ".join(f"{site}={outcome}" for site, outcome in self.outcomes)
        decision = self.coordinator_decision or "<none>"
        return (
            f"txn {self.txn_id}: enforced outcomes diverge "
            f"[{sites}] (coordinator decided {decision})"
        )


@dataclass
class AtomicityReport:
    """Result of the agreement check over a run."""

    transactions_checked: int = 0
    violations: list[AtomicityViolationRecord] = field(default_factory=list)
    stuck_in_doubt: dict[str, list[str]] = field(default_factory=dict)

    @property
    def holds(self) -> bool:
        """True iff no transaction's outcomes diverge."""
        return not self.violations

    def __str__(self) -> str:
        status = "ATOMIC" if self.holds else f"{len(self.violations)} VIOLATION(S)"
        lines = [f"Atomicity over {self.transactions_checked} txns: {status}"]
        lines.extend(f"  - {v}" for v in self.violations)
        for txn_id, sites in sorted(self.stuck_in_doubt.items()):
            lines.append(f"  ! txn {txn_id} still in doubt at {sites}")
        return "\n".join(lines)


def check_atomicity(
    history: History,
    trace: Optional[TraceRecorder] = None,
) -> AtomicityReport:
    """Check that every transaction's enforced outcomes are consistent.

    Args:
        history: significant-event history of the run.
        trace: when given, participants that force-wrote a PREPARED
            record but never enforced any decision are reported as
            ``stuck_in_doubt`` (a liveness observation, not counted as
            an atomicity violation).
    """
    report = AtomicityReport()
    for txn_id in sorted(history.transactions()):
        outcomes = history.enforcements(txn_id)
        if not outcomes:
            continue
        report.transactions_checked += 1
        decision = history.decision(txn_id)
        distinct = {outcome for outcome in outcomes.values()}
        contradicts_decision = decision is not None and any(
            outcome is not decision for outcome in outcomes.values()
        )
        if len(distinct) > 1 or contradicts_decision:
            report.violations.append(
                AtomicityViolationRecord(
                    txn_id=txn_id,
                    outcomes=tuple(
                        sorted((site, o.value) for site, o in outcomes.items())
                    ),
                    coordinator_decision=decision.value if decision else None,
                )
            )
    if trace is not None:
        _find_stuck_in_doubt(history, trace, report)
    return report


def _find_stuck_in_doubt(
    history: History, trace: TraceRecorder, report: AtomicityReport
) -> None:
    prepared: dict[str, set[str]] = {}
    for event in trace.select(category="db", name="prepared"):
        prepared.setdefault(event.details["txn"], set()).add(event.site)
    for txn_id, sites in prepared.items():
        enforced_at = set(history.enforcements(txn_id))
        missing = sorted(sites - enforced_at)
        if missing:
            report.stuck_in_doubt[txn_id] = missing


class SiteView(Protocol):
    """The slice of a site the operational-correctness check inspects."""

    @property
    def site_id(self) -> str: ...

    def retained_transactions(self) -> set[str]:
        """Txns still occupying the site's protocol table(s)."""

    def uncollected_log_transactions(self) -> set[str]:
        """Txns with records still occupying the site's stable log."""


@dataclass
class OperationalReport:
    """Result of checking Definition 1 items 2 and 3 at end of run."""

    atomicity: Optional[AtomicityReport] = None
    retained_entries: dict[str, set[str]] = field(default_factory=dict)
    uncollected_logs: dict[str, set[str]] = field(default_factory=dict)

    @property
    def holds(self) -> bool:
        """True iff atomicity holds and everything was forgotten/GC'd."""
        if self.atomicity is not None and not self.atomicity.holds:
            return False
        return not self.retained_entries and not self.uncollected_logs

    @property
    def total_retained(self) -> int:
        return sum(len(v) for v in self.retained_entries.values())

    @property
    def total_uncollected(self) -> int:
        return sum(len(v) for v in self.uncollected_logs.values())

    def __str__(self) -> str:
        status = "OPERATIONALLY CORRECT" if self.holds else "NOT OPERATIONALLY CORRECT"
        lines = [status]
        if self.atomicity is not None:
            lines.append(str(self.atomicity))
        for site, txns in sorted(self.retained_entries.items()):
            lines.append(
                f"  - {site}: protocol table still holds {sorted(txns)}"
            )
        for site, txns in sorted(self.uncollected_logs.items()):
            lines.append(f"  - {site}: log not GC'd for {sorted(txns)}")
        return "\n".join(lines)


def check_operational_correctness(
    sites: Iterable[SiteView],
    history: Optional[History] = None,
    trace: Optional[TraceRecorder] = None,
) -> OperationalReport:
    """Check items 2 and 3 of Definition 1 over quiescent sites.

    Call this only after the run has quiesced (no pending messages or
    timers) and every site has recovered, since "eventually" has by
    then had its chance.
    """
    report = OperationalReport()
    if history is not None:
        report.atomicity = check_atomicity(history, trace)
    for site in sites:
        retained = site.retained_transactions()
        if retained:
            report.retained_entries[site.site_id] = retained
        uncollected = site.uncollected_log_transactions()
        if uncollected:
            report.uncollected_logs[site.site_id] = uncollected
    return report
