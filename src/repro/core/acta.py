"""ACTA: an executable first-order logic over commit histories.

The paper expresses its safety criterion in ACTA [Chrysanthis &
Ramamritham, TODS 1994] — a first-order predicate logic over
transaction significant events with a precedence relation. This module
implements a small formula language (atoms, connectives, quantifiers)
evaluated against a :class:`~repro.core.history.History`, and builds
**Definition 2** in it literally:

    SafeState_C(T) ⇐
        (Decide_C(Abort_T) ∈ H ∧
         ∀ti ∈ T: (DeletePT_C(T) → INQ_ti) ⇒ Respond_C(Abort_ti) ∈ H)
      ∨ (Decide_C(Commit_T) ∈ H ∧
         ∀ti ∈ T: (DeletePT_C(T) → INQ_ti) ⇒ Respond_C(Commit_ti) ∈ H)

Evaluating the formula against a run's history is an independent,
declarative implementation of the SafeState check — the test suite
cross-validates it against the imperative
:func:`repro.core.safe_state.check_safe_state` on whole-system runs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.core.events import EventKind, Outcome, SignificantEvent
from repro.core.history import History


@dataclass
class Context:
    """Evaluation context: the history H plus current variable bindings."""

    history: History
    bindings: dict[str, Any] = field(default_factory=dict)

    def bound(self, var: str, value: Any) -> "Context":
        """A child context with one more binding."""
        extended = dict(self.bindings)
        extended[var] = value
        return Context(self.history, extended)

    def __getitem__(self, var: str) -> Any:
        return self.bindings[var]


class Formula(abc.ABC):
    """A closed or open formula over a commit history."""

    @abc.abstractmethod
    def evaluate(self, ctx: Context) -> bool:
        """Truth value under the context's bindings."""

    @abc.abstractmethod
    def render(self) -> str:
        """ACTA-style notation of the formula."""

    def holds_in(self, history: History, **bindings: Any) -> bool:
        """Evaluate as a closed formula over ``history``."""
        return self.evaluate(Context(history, dict(bindings)))

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.render()

    # Connective sugar.
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Implies(self, other)


class Atom(Formula):
    """A primitive predicate with an ACTA-style label."""

    def __init__(self, label: str, predicate: Callable[[Context], bool]) -> None:
        self._label = label
        self._predicate = predicate

    def evaluate(self, ctx: Context) -> bool:
        return self._predicate(ctx)

    def render(self) -> str:
        return self._label


class And(Formula):
    def __init__(self, *parts: Formula) -> None:
        self._parts = parts

    def evaluate(self, ctx: Context) -> bool:
        return all(part.evaluate(ctx) for part in self._parts)

    def render(self) -> str:
        return "(" + " ∧ ".join(part.render() for part in self._parts) + ")"


class Or(Formula):
    def __init__(self, *parts: Formula) -> None:
        self._parts = parts

    def evaluate(self, ctx: Context) -> bool:
        return any(part.evaluate(ctx) for part in self._parts)

    def render(self) -> str:
        return "(" + " ∨ ".join(part.render() for part in self._parts) + ")"


class Not(Formula):
    def __init__(self, inner: Formula) -> None:
        self._inner = inner

    def evaluate(self, ctx: Context) -> bool:
        return not self._inner.evaluate(ctx)

    def render(self) -> str:
        return f"¬{self._inner.render()}"


class Implies(Formula):
    def __init__(self, antecedent: Formula, consequent: Formula) -> None:
        self._antecedent = antecedent
        self._consequent = consequent

    def evaluate(self, ctx: Context) -> bool:
        return (not self._antecedent.evaluate(ctx)) or self._consequent.evaluate(ctx)

    def render(self) -> str:
        return f"({self._antecedent.render()} ⇒ {self._consequent.render()})"


class ForAll(Formula):
    """Universal quantification over a history-derived domain."""

    def __init__(
        self,
        var: str,
        domain: Callable[[Context], Iterable[Any]],
        body: Formula,
        domain_label: str,
    ) -> None:
        self._var = var
        self._domain = domain
        self._body = body
        self._domain_label = domain_label

    def evaluate(self, ctx: Context) -> bool:
        return all(
            self._body.evaluate(ctx.bound(self._var, value))
            for value in self._domain(ctx)
        )

    def render(self) -> str:
        return f"∀{self._var} ∈ {self._domain_label}: {self._body.render()}"


class Exists(Formula):
    """Existential quantification over a history-derived domain."""

    def __init__(
        self,
        var: str,
        domain: Callable[[Context], Iterable[Any]],
        body: Formula,
        domain_label: str,
    ) -> None:
        self._var = var
        self._domain = domain
        self._body = body
        self._domain_label = domain_label

    def evaluate(self, ctx: Context) -> bool:
        return any(
            self._body.evaluate(ctx.bound(self._var, value))
            for value in self._domain(ctx)
        )

    def render(self) -> str:
        return f"∃{self._var} ∈ {self._domain_label}: {self._body.render()}"


# -- Definition 2, built from the pieces above --------------------------------


def _decided(txn_id: str, outcome: Outcome) -> Formula:
    """``Decide_C(outcome_T) ∈ H`` (the coordinator's last decision)."""

    def predicate(ctx: Context) -> bool:
        return ctx.history.decision(txn_id) is outcome

    return Atom(f"Decide_C({outcome.value}_{txn_id}) ∈ H", predicate)


def _post_forget_inquiries(txn_id: str) -> Callable[[Context], list[SignificantEvent]]:
    def domain(ctx: Context) -> list[SignificantEvent]:
        return ctx.history.inquiries_after_forget(txn_id)

    return domain


def _responded_with(txn_id: str, outcome: Outcome) -> Formula:
    """``Respond_C(outcome_ti) ∈ H`` for the bound inquiry ``inq``.

    An inquiry that never received a response leaves the implication's
    consequent *pending*, not violated — the run simply has not finished
    answering; Definition 2 constrains the answers actually given.
    """

    def predicate(ctx: Context) -> bool:
        inquiry: SignificantEvent = ctx["inq"]
        response = ctx.history.response_to(inquiry)
        if response is None:
            return True  # unanswered: nothing inconsistent was said
        return response.outcome is outcome

    return Atom(f"Respond_C({outcome.value}_ti) ∈ H", predicate)


def _clause(txn_id: str, outcome: Outcome) -> Formula:
    """One disjunct of Definition 2 (abort clause or commit clause)."""
    return And(
        _decided(txn_id, outcome),
        ForAll(
            "inq",
            _post_forget_inquiries(txn_id),
            _responded_with(txn_id, outcome),
            domain_label=f"INQ_ti after DeletePT_C({txn_id})",
        ),
    )


def safe_state_formula(txn_id: str) -> Formula:
    """Definition 2 as a closed ACTA formula for one transaction."""
    return Or(
        _clause(txn_id, Outcome.ABORT),
        _clause(txn_id, Outcome.COMMIT),
    )


def safe_state_holds(history: History, txn_id: str) -> bool:
    """Evaluate Definition 2 for ``txn_id`` over a finished history.

    The formula only constrains *forgotten* transactions: if the
    coordinator never executed ``DeletePT_C(T)``, the criterion is
    vacuously satisfied (there is nothing forgotten to answer wrongly).
    """
    if not history.forget_events(txn_id):
        return True
    if history.decision(txn_id) is None:
        # Forgotten without any surviving decision: the effective
        # decision is the abort presumption of recovery (the paper's
        # hidden presumption); evaluate the abort clause's quantifier.
        return ForAll(
            "inq",
            _post_forget_inquiries(txn_id),
            _responded_with(txn_id, Outcome.ABORT),
            domain_label=f"INQ_ti after DeletePT_C({txn_id})",
        ).holds_in(history)
    return safe_state_formula(txn_id).holds_in(history)


def check_safe_state_acta(history: History) -> dict[str, bool]:
    """Definition 2 for every transaction in the history.

    Returns:
        txn id → whether SafeState held. This is the declarative twin
        of :func:`repro.core.safe_state.check_safe_state`; the test
        suite asserts the two agree on whole-system runs.
    """
    return {
        txn_id: safe_state_holds(history, txn_id)
        for txn_id in sorted(history.transactions())
    }
