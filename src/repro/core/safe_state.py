"""The SafeState predicate — Definition 2 of the paper, executable.

Definition 2 states that a coordinator C is in a safe state with
respect to a transaction T iff

* ``Decide_C(Abort_T) ∈ H`` and every inquiry ``INQ_ti`` that follows
  ``DeletePT_C(T)`` is answered ``Respond_C(Abort_ti)``, **or**
* ``Decide_C(Commit_T) ∈ H`` and every inquiry following the forget is
  answered ``Respond_C(Commit_ti)``.

Intuitively: after forgetting, a *single* presumption — the one
consistent with the actual outcome — must answer every future inquiry.

Over a completed run we check the universally-quantified implication
directly: for every transaction the coordinator forgot, every recorded
post-forget inquiry must have received a response equal to the
decision. A response that contradicts the decision (or a forget without
any decision that later produced a contradictory response) is a
:class:`SafeStateViolationRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.events import EventKind, Outcome, SignificantEvent
from repro.core.history import History


@dataclass(frozen=True)
class SafeStateViolationRecord:
    """One violation of Definition 2 found in a history."""

    txn_id: str
    coordinator: str
    decided: Optional[Outcome]
    responded: Outcome
    inquirer: str
    inquiry_seq: int

    def __str__(self) -> str:
        decided = self.decided.value if self.decided else "<none>"
        return (
            f"txn {self.txn_id}: coordinator {self.coordinator} decided "
            f"{decided} but answered {self.responded.value} to "
            f"post-forget inquiry from {self.inquirer} (seq {self.inquiry_seq})"
        )


@dataclass
class SafeStateReport:
    """Result of evaluating Definition 2 over a whole history."""

    checked_transactions: int = 0
    checked_inquiries: int = 0
    violations: list[SafeStateViolationRecord] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """True iff every forget happened in a safe state."""
        return not self.violations

    def __str__(self) -> str:
        status = "SAFE" if self.holds else f"{len(self.violations)} VIOLATION(S)"
        lines = [
            f"SafeState over {self.checked_transactions} txns / "
            f"{self.checked_inquiries} post-forget inquiries: {status}"
        ]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)


def check_safe_state(history: History) -> SafeStateReport:
    """Evaluate Definition 2 for every transaction in ``history``."""
    report = SafeStateReport()
    for txn_id in sorted(history.transactions()):
        forgets = history.forget_events(txn_id)
        if not forgets:
            continue
        report.checked_transactions += 1
        coordinator = forgets[0].site
        decided = history.decision(txn_id, coordinator=coordinator)
        for inquiry in history.inquiries_after_forget(txn_id):
            response = history.response_to(inquiry)
            if response is None or response.outcome is None:
                continue
            report.checked_inquiries += 1
            if _response_violates(decided, response.outcome):
                report.violations.append(
                    SafeStateViolationRecord(
                        txn_id=txn_id,
                        coordinator=coordinator,
                        decided=decided,
                        responded=response.outcome,
                        inquirer=inquiry.site,
                        inquiry_seq=inquiry.seq,
                    )
                )
    return report


def _response_violates(decided: Optional[Outcome], responded: Outcome) -> bool:
    """A post-forget response violates Definition 2 iff it contradicts
    the decision.

    When the coordinator never decided (it crashed before the decision
    and its recovery presumed abort), the effective decision is abort:
    a commit response then violates the criterion.
    """
    effective = decided if decided is not None else Outcome.ABORT
    return responded is not effective
