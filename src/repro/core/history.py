"""The history H: significant events extracted from a simulation trace.

A :class:`History` is the executable counterpart of the paper's ACTA
history — the complete record of a run's commit-processing events with
a total precedence order. It is built from a
:class:`~repro.sim.tracing.TraceRecorder` by mapping trace events onto
the significant-event vocabulary of :mod:`repro.core.events`:

========================  ==================================  ===========
trace (category.name)     condition                           event kind
========================  ==================================  ===========
``protocol.decide``       at the coordinator                  DECIDE
``protocol.forget``       ``role == "coordinator"``           DELETE_PT
``protocol.forget``       ``role == "participant"``           FORGET_P
``protocol.inquiry``      recorded by the coordinator         INQUIRY
``protocol.respond``      recorded by the coordinator         RESPOND
``db.commit``/``db.abort``  at any site                       ENFORCE
========================  ==================================  ===========
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core.events import EventKind, Outcome, SignificantEvent
from repro.sim.tracing import TraceEvent, TraceRecorder


def _to_significant(event: TraceEvent) -> Optional[SignificantEvent]:
    """Map one trace event onto a significant event, or ``None``."""
    if event.category == "protocol":
        txn = event.details.get("txn", "")
        if event.name == "decide":
            return SignificantEvent(
                kind=EventKind.DECIDE,
                txn_id=txn,
                site=event.site,
                seq=event.seq,
                time=event.time,
                outcome=Outcome.parse(event.details["decision"]),
            )
        if event.name == "forget":
            kind = (
                EventKind.DELETE_PT
                if event.details.get("role", "coordinator") == "coordinator"
                else EventKind.FORGET_P
            )
            return SignificantEvent(
                kind=kind,
                txn_id=txn,
                site=event.site,
                seq=event.seq,
                time=event.time,
            )
        if event.name == "inquiry":
            return SignificantEvent(
                kind=EventKind.INQUIRY,
                txn_id=txn,
                site=event.details.get("inquirer", ""),
                seq=event.seq,
                time=event.time,
                peer=event.site,
            )
        if event.name == "respond":
            return SignificantEvent(
                kind=EventKind.RESPOND,
                txn_id=txn,
                site=event.site,
                seq=event.seq,
                time=event.time,
                outcome=Outcome.parse(event.details["decision"]),
                peer=event.details.get("to", ""),
            )
        return None
    if event.category == "db" and event.name in ("commit", "abort"):
        return SignificantEvent(
            kind=EventKind.ENFORCE,
            txn_id=event.details.get("txn", ""),
            site=event.site,
            seq=event.seq,
            time=event.time,
            outcome=Outcome.parse(event.name),
        )
    return None


class History:
    """An ordered history of significant events for a whole run."""

    def __init__(self, events: Iterable[SignificantEvent]) -> None:
        self._events = sorted(events, key=lambda e: e.seq)
        # Checkers query by (kind), (txn) and (kind, txn) once per
        # transaction per invariant, which made the linear scans in
        # of_kind/events_for the dominant cost of every oracle pass
        # (see the commit-storm profiles in BENCH_sim.json). Build the
        # three indexes once; each holds events in precedence order
        # because _events is already sorted.
        self._by_kind: dict[EventKind, list[SignificantEvent]] = {}
        self._by_txn: dict[str, list[SignificantEvent]] = {}
        self._by_kind_txn: dict[
            tuple[EventKind, str], list[SignificantEvent]
        ] = {}
        for event in self._events:
            self._by_kind.setdefault(event.kind, []).append(event)
            self._by_txn.setdefault(event.txn_id, []).append(event)
            self._by_kind_txn.setdefault(
                (event.kind, event.txn_id), []
            ).append(event)

    @classmethod
    def from_trace(cls, trace: TraceRecorder) -> "History":
        """Extract the significant-event history from a run trace."""
        significant = (_to_significant(event) for event in trace)
        return cls(event for event in significant if event is not None)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SignificantEvent]:
        return iter(self._events)

    # -- queries --------------------------------------------------------------

    def events_for(self, txn_id: str) -> list[SignificantEvent]:
        """All significant events of one transaction, in precedence order."""
        return list(self._by_txn.get(txn_id, ()))

    def of_kind(
        self, kind: EventKind, txn_id: Optional[str] = None
    ) -> list[SignificantEvent]:
        """All events of a kind (optionally restricted to one txn)."""
        if txn_id is None:
            return list(self._by_kind.get(kind, ()))
        return list(self._by_kind_txn.get((kind, txn_id), ()))

    def transactions(self) -> set[str]:
        """Ids of every transaction with at least one significant event."""
        return {txn for txn in self._by_txn if txn}

    def decision(self, txn_id: str, coordinator: Optional[str] = None) -> Optional[Outcome]:
        """The coordinator's (last) decision for ``txn_id``, if any.

        A coordinator may decide more than once across crashes (it
        re-initiates the decision phase with the *same* recorded
        decision); the last DECIDE is authoritative.
        """
        decides = [
            e
            for e in self.of_kind(EventKind.DECIDE, txn_id)
            if coordinator is None or e.site == coordinator
        ]
        return decides[-1].outcome if decides else None

    def coordinator_of(self, txn_id: str) -> Optional[str]:
        """Site that recorded DECIDE events for ``txn_id``, if any."""
        decides = self.of_kind(EventKind.DECIDE, txn_id)
        return decides[0].site if decides else None

    def forget_events(self, txn_id: str) -> list[SignificantEvent]:
        """Coordinator DeletePT events for ``txn_id``."""
        return self.of_kind(EventKind.DELETE_PT, txn_id)

    def inquiries_after_forget(self, txn_id: str) -> list[SignificantEvent]:
        """INQ events that follow the first DeletePT of the transaction."""
        forgets = self.forget_events(txn_id)
        if not forgets:
            return []
        first_forget = forgets[0]
        return [
            e
            for e in self.of_kind(EventKind.INQUIRY, txn_id)
            if first_forget.precedes(e)
        ]

    def response_to(
        self, inquiry: SignificantEvent
    ) -> Optional[SignificantEvent]:
        """The first RESPOND to ``inquiry``'s participant after it."""
        for event in self.of_kind(EventKind.RESPOND, inquiry.txn_id):
            if inquiry.precedes(event) and event.peer == inquiry.site:
                return event
        return None

    def enforcements(self, txn_id: str) -> dict[str, Outcome]:
        """Final enforced outcome per site for ``txn_id``.

        The *last* ENFORCE event per site wins: a volatile enforcement
        wiped out by a crash is superseded by the post-recovery one.
        """
        final: dict[str, Outcome] = {}
        for event in self.of_kind(EventKind.ENFORCE, txn_id):
            assert event.outcome is not None
            final[event.site] = event.outcome
        return final

    def render(self, txn_id: Optional[str] = None) -> str:
        """Readable rendering of the history (optionally one txn)."""
        events = self._events if txn_id is None else self.events_for(txn_id)
        return "\n".join(str(e) for e in events)
