"""ACTA-style significant events.

The paper expresses its safety criterion in ACTA, a first-order logic
over transaction *significant events* with a precedence relation. We
model the events Definition 2 quantifies over:

* ``DECIDE`` — ``Decide_C(Commit_T)`` / ``Decide_C(Abort_T)``: the
  coordinator fixes the transaction's outcome.
* ``DELETE_PT`` — ``DeletePT_C(T)``: the coordinator deletes T from its
  protocol table (forgets the transaction).
* ``INQUIRY`` — ``INQ_ti``: a participant inquires about its
  subtransaction ti.
* ``RESPOND`` — ``Respond_C(Outcome_ti)``: the coordinator's reply.
* ``ENFORCE`` — a participant enforces a final decision locally (used
  by the atomicity checker; not part of Definition 2 itself).
* ``FORGET_P`` — a participant forgets the transaction (Definition 1,
  item 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Outcome(enum.Enum):
    """Final outcome of a transaction."""

    COMMIT = "commit"
    ABORT = "abort"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def parse(cls, text: str) -> "Outcome":
        for member in cls:
            if member.value == text:
                return member
        raise ValueError(f"unknown outcome {text!r}")

    @property
    def opposite(self) -> "Outcome":
        return Outcome.ABORT if self is Outcome.COMMIT else Outcome.COMMIT


class EventKind(enum.Enum):
    """Kinds of significant events in a commit-processing history."""

    DECIDE = "decide"
    DELETE_PT = "delete_pt"
    INQUIRY = "inquiry"
    RESPOND = "respond"
    ENFORCE = "enforce"
    FORGET_P = "forget_p"


@dataclass(frozen=True)
class SignificantEvent:
    """One significant event in the history H.

    Attributes:
        kind: which significant event this is.
        txn_id: the (global) transaction T.
        site: the site at which the event occurred — the coordinator for
            DECIDE/DELETE_PT/RESPOND, a participant for the others.
        seq: position in the global total order (the precedence
            relation: ``a`` precedes ``b`` iff ``a.seq < b.seq``).
        time: virtual time, for reporting.
        outcome: COMMIT/ABORT for DECIDE, RESPOND and ENFORCE events.
        peer: for INQUIRY events, the coordinator being asked; for
            RESPOND events, the participant being answered.
    """

    kind: EventKind
    txn_id: str
    site: str
    seq: int
    time: float
    outcome: Optional[Outcome] = None
    peer: str = ""

    def precedes(self, other: "SignificantEvent") -> bool:
        """The ACTA precedence relation (→) over the total order."""
        return self.seq < other.seq

    def __str__(self) -> str:
        out = f"={self.outcome.value}" if self.outcome else ""
        peer = f" peer={self.peer}" if self.peer else ""
        return (
            f"{self.kind.value}{out}({self.txn_id}) @ {self.site} "
            f"[seq={self.seq}, t={self.time:.3f}]{peer}"
        )
