"""Presumptions about forgotten transactions.

A *presumption* is the answer a coordinator gives when asked about a
transaction it has no information for:

* **PrA** presumes *abort* (explicitly);
* **PrN** also presumes abort — the paper calls this its *hidden*
  presumption: after a coordinator failure all transactions active at
  the failure are considered aborted;
* **PrC** presumes *commit*.

PrAny (§4.2) makes **no a priori presumption**: it *dynamically adopts
the presumption of the inquiring participant's protocol*, which is
exactly what :func:`presumed_outcome_for_inquirer` computes.
"""

from __future__ import annotations

import enum

from repro.errors import UnknownProtocolError


class Presumption(enum.Enum):
    """What a protocol presumes about a forgotten transaction."""

    ABORT = "abort"
    COMMIT = "commit"
    NONE = "none"  # PrAny: no a priori presumption.

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_PROTOCOL_PRESUMPTIONS: dict[str, Presumption] = {
    "PrN": Presumption.ABORT,  # the hidden presumption of basic 2PC
    "PrA": Presumption.ABORT,
    "PrC": Presumption.COMMIT,
    "IYV": Presumption.ABORT,  # implicit yes-vote presumes abort, like PrA
    "CL": Presumption.ABORT,  # coordinator log presumes abort, like PrN
    "PrAny": Presumption.NONE,
}


def presumption_of_protocol(protocol: str) -> Presumption:
    """The presumption the named protocol applies to unknown transactions.

    Raises:
        UnknownProtocolError: for protocols outside the paper's set.
    """
    try:
        return _PROTOCOL_PRESUMPTIONS[protocol]
    except KeyError:
        raise UnknownProtocolError(
            f"no presumption defined for protocol {protocol!r}; "
            f"known: {sorted(_PROTOCOL_PRESUMPTIONS)}"
        ) from None


def presumed_outcome_for_inquirer(inquirer_protocol: str) -> str:
    """PrAny's dynamic presumption: answer with the *inquirer's* presumption.

    A forgotten transaction can only be inquired about by a participant
    whose protocol did not require it to acknowledge the decision; the
    safe-state argument (Theorem 3) guarantees that participant's own
    presumption matches the actual outcome.

    Returns:
        ``"commit"`` if the inquirer runs PrC, else ``"abort"``.
    """
    presumption = presumption_of_protocol(inquirer_protocol)
    if presumption is Presumption.COMMIT:
        return "commit"
    if presumption is Presumption.ABORT:
        return "abort"
    raise UnknownProtocolError(
        f"inquirer protocol {inquirer_protocol!r} has no usable presumption"
    )
