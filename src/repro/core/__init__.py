"""The paper's core formalism, executable.

* :mod:`repro.core.presumption` — the presumption each 2PC variant
  applies to forgotten transactions, and PrAny's dynamic adoption of
  the inquirer's presumption.
* :mod:`repro.core.events` / :mod:`repro.core.history` — ACTA-style
  significant events and the history H with its precedence relation,
  extracted from a simulation trace.
* :mod:`repro.core.safe_state` — Definition 2 (SafeState) evaluated
  over a history.
* :mod:`repro.core.correctness` — Definition 1: functional correctness
  (atomicity) and operational correctness (eventual forgetting).
"""

from repro.core.acta import (
    check_safe_state_acta,
    safe_state_formula,
    safe_state_holds,
)
from repro.core.correctness import (
    AtomicityReport,
    OperationalReport,
    check_atomicity,
    check_operational_correctness,
)
from repro.core.events import EventKind, Outcome, SignificantEvent
from repro.core.history import History
from repro.core.presumption import (
    Presumption,
    presumption_of_protocol,
    presumed_outcome_for_inquirer,
)
from repro.core.safe_state import SafeStateReport, check_safe_state

__all__ = [
    "AtomicityReport",
    "EventKind",
    "History",
    "OperationalReport",
    "Outcome",
    "Presumption",
    "SafeStateReport",
    "SignificantEvent",
    "check_atomicity",
    "check_safe_state_acta",
    "safe_state_formula",
    "safe_state_holds",
    "check_operational_correctness",
    "check_safe_state",
    "presumed_outcome_for_inquirer",
    "presumption_of_protocol",
]
