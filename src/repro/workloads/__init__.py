"""Workload generation: topologies, transaction streams, failure plans."""

from repro.workloads.failure_schedules import (
    CrashPoint,
    coordinator_crash_points,
    participant_crash_points,
)
from repro.workloads.generator import WorkloadSpec, build_mdbs, generate_transactions
from repro.workloads.openloop import (
    OpenLoopSpec,
    generate_open_loop,
    offered_load_row,
    run_open_loop,
    run_rate_sweep,
    saturation_knee,
)
from repro.workloads.mixes import (
    MIXES,
    ProtocolMix,
    homogeneous,
    mixed_pra_prc,
    three_way,
)

__all__ = [
    "CrashPoint",
    "MIXES",
    "OpenLoopSpec",
    "ProtocolMix",
    "WorkloadSpec",
    "build_mdbs",
    "coordinator_crash_points",
    "generate_open_loop",
    "generate_transactions",
    "homogeneous",
    "mixed_pra_prc",
    "offered_load_row",
    "participant_crash_points",
    "run_open_loop",
    "run_rate_sweep",
    "saturation_knee",
    "three_way",
]
