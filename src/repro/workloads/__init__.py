"""Workload generation: topologies, transaction streams, failure plans."""

from repro.workloads.failure_schedules import (
    CrashPoint,
    coordinator_crash_points,
    participant_crash_points,
)
from repro.workloads.generator import WorkloadSpec, build_mdbs, generate_transactions
from repro.workloads.mixes import (
    MIXES,
    ProtocolMix,
    homogeneous,
    mixed_pra_prc,
    three_way,
)

__all__ = [
    "CrashPoint",
    "MIXES",
    "ProtocolMix",
    "WorkloadSpec",
    "build_mdbs",
    "coordinator_crash_points",
    "generate_transactions",
    "homogeneous",
    "mixed_pra_prc",
    "participant_crash_points",
    "three_way",
]
