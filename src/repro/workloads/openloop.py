"""Open-loop traffic generation: latency vs offered load.

:func:`generate_transactions` paces arrivals by a mean inter-arrival
time, which is fine for functional workloads but says nothing about
*load*: the stream never outruns the system because nothing holds the
arrival rate fixed while the system slows down. An **open-loop**
generator does exactly that — arrival instants are drawn up front from
the offered rate alone, so when the cluster saturates, latency grows
instead of the generator politely backing off. That is the methodology
behind every latency-vs-throughput curve worth reading (and the reason
closed-loop drivers systematically under-report queueing delay —
coordinated omission).

The pieces:

* :class:`OpenLoopSpec` — offered rate (transactions per *wall*
  second), arrival process (Poisson or bursty), client count,
  contention / abort / read-only knobs, seed.
* :func:`generate_open_loop` — the spec realized as a deterministic
  list of :class:`~repro.mdbs.transaction.GlobalTransaction` with
  pre-drawn ``submit_at`` instants: per-client independent arrival
  streams, merged.
* :func:`run_open_loop` — drive a started cluster (``LiveCluster`` or
  ``ProcessCluster``: both schedule non-immediate submissions at
  ``submit_at`` and stamp latency clocks from the *scheduled* arrival)
  through one generated stream to quiescence.
* :func:`offered_load_row` / :func:`saturation_knee` — fold one run
  into a ``{rate, achieved, p50/p95/p99}`` row and find the first rate
  where the system stops keeping up.
* :func:`run_rate_sweep` — the whole curve: one fresh cluster per
  offered rate, identical transaction bodies (only the arrival clock
  changes), rows plus knee.

Everything is deterministic in ``spec.seed``: the same spec over the
same site list yields the same transaction stream, byte for byte —
which is what makes a json-codec sweep and a binary-codec sweep
differential twins.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Optional, Sequence

from repro.errors import WorkloadError
from repro.mdbs.placement import PlacementPolicy
from repro.mdbs.transaction import GlobalTransaction, WriteOp
from repro.sim.rng import RandomStreams
from repro.workloads.generator import COORDINATOR_ID

#: Virtual-time margin appended after the last scheduled arrival when
#: driving a cluster to quiescence (mirrors the live runner's margin).
RUN_MARGIN = 500.0

#: Arrival processes :class:`OpenLoopSpec` understands.
ARRIVALS = ("poisson", "bursty")

#: ``saturation_knee``: p95 above this multiple of the lowest-rate p95
#: marks the knee.
KNEE_P95_FACTOR = 3.0

#: ``saturation_knee``: achieved throughput below this fraction of the
#: offered rate marks the knee.
KNEE_ACHIEVED_FLOOR = 0.9


@dataclass(frozen=True)
class OpenLoopSpec:
    """An open-loop transaction stream at a fixed offered rate.

    Attributes:
        rate: offered load in transactions per wall-clock second,
            held constant regardless of how the system responds.
        n_transactions: stream length.
        clients: independent arrival streams; each client offers
            ``rate / clients`` and the merged stream offers ``rate``
            (a Poisson superposition is Poisson, so the client count
            only matters for the bursty process and for per-client
            determinism).
        arrival: ``"poisson"`` (exponential gaps) or ``"bursty"``
            (geometric-size batches of back-to-back arrivals, batch
            gaps stretched so the *offered rate stays the same* —
            same mean, heavier tail).
        burst_mean: mean batch size of the bursty process (>= 1).
        participants_min/max: per-transaction participant count range
            (bounded by the site pool).
        hot_keys: size of the shared hot-key pool; 0 disables
            contention entirely.
        hot_fraction: probability that a participant's key is drawn
            from the hot pool instead of being private to the
            transaction (lock-conflict dial: 0 = no conflicts,
            1 = every write contends).
        abort_fraction: probability that an *update* transaction is
            forced to abort via a No-voting participant.
        read_only_fraction: probability that a transaction only reads
            (every participant votes READ under the read-only
            optimization; such transactions are never forced to abort).
        seed: workload randomness, independent of the runtime seed.
    """

    rate: float = 50.0
    n_transactions: int = 32
    clients: int = 4
    arrival: str = "poisson"
    burst_mean: float = 4.0
    participants_min: int = 2
    participants_max: int = 3
    hot_keys: int = 0
    hot_fraction: float = 0.0
    abort_fraction: float = 0.0
    read_only_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise WorkloadError(f"offered rate must be positive: {self.rate!r}")
        if self.n_transactions < 0:
            raise WorkloadError("n_transactions must be non-negative")
        if self.clients < 1:
            raise WorkloadError(f"need at least one client: {self.clients!r}")
        if self.arrival not in ARRIVALS:
            raise WorkloadError(
                f"unknown arrival process {self.arrival!r}: "
                f"expected one of {ARRIVALS}"
            )
        if self.burst_mean < 1.0:
            raise WorkloadError(
                f"burst_mean must be >= 1 arrival per batch: {self.burst_mean!r}"
            )
        if self.participants_min < 1 or self.participants_max < self.participants_min:
            raise WorkloadError(
                f"invalid participant range "
                f"[{self.participants_min}, {self.participants_max}]"
            )
        for name in ("hot_fraction", "abort_fraction", "read_only_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{name} must be within [0, 1]: {value!r}")

    def at_rate(self, rate: float) -> "OpenLoopSpec":
        """The same stream offered at a different rate (same bodies:
        only the arrival clock changes)."""
        return dataclasses.replace(self, rate=rate)


def _client_arrivals(
    rng, spec: OpenLoopSpec, time_scale: float
) -> "list[float]":
    """One client's arrival instants (virtual units), unbounded count —
    the merge truncates. Per-client offered rate is ``rate/clients``;
    the bursty process stretches batch gaps by the mean batch size so
    the offered rate is unchanged."""
    # Mean gap between arrivals, in virtual units: wall / time_scale.
    mean_gap = (spec.clients / spec.rate) / time_scale
    arrivals: list[float] = []
    now = 0.0
    while len(arrivals) < spec.n_transactions:
        if spec.arrival == "poisson":
            now += rng.expovariate(1.0 / mean_gap)
            arrivals.append(now)
        else:  # bursty: a whole batch lands at one instant
            now += rng.expovariate(1.0 / (mean_gap * spec.burst_mean))
            batch = 1
            while rng.random() < 1.0 - 1.0 / spec.burst_mean:
                batch += 1
            arrivals.extend([now] * batch)
    return arrivals


def generate_open_loop(
    spec: OpenLoopSpec,
    sites: Sequence[str],
    time_scale: float = 0.01,
    coordinator: str = COORDINATOR_ID,
    placement: Optional[PlacementPolicy] = None,
) -> list[GlobalTransaction]:
    """Realize ``spec`` against ``sites`` as a submit-ready stream.

    Arrival instants are virtual-time units (``submit_at``), converted
    from the wall-second offered rate through ``time_scale`` — the same
    scale the driving cluster runs at, so the *wall* arrival process is
    exactly what the spec offers.

    Transaction bodies are drawn from a stream keyed only by the seed —
    not by the rate — so sweeping the rate replays identical work under
    different arrival clocks. With ``placement`` given (sharded
    coordinators) each transaction is placed on a non-participant site.
    """
    sites = sorted(sites)
    if not sites:
        raise WorkloadError("need at least one participant site")
    if placement is not None and spec.participants_max >= len(sites):
        raise WorkloadError(
            f"sharded placement needs a non-participant coordinator for "
            f"every transaction: participants_max={spec.participants_max} "
            f"must be < {len(sites)} sites"
        )
    streams = RandomStreams(spec.seed)
    # Independent per-client arrival clocks, merged by time (ties break
    # by client index — deterministic).
    merged: list[tuple[float, int]] = []
    for client in range(spec.clients):
        rng = streams.stream(f"openloop-client{client}")
        merged.extend(
            (at, client) for at in _client_arrivals(rng, spec, time_scale)
        )
    merged.sort()
    del merged[spec.n_transactions :]

    body_rng = streams.stream("openloop-body")
    transactions: list[GlobalTransaction] = []
    for index, (submit_at, _client) in enumerate(merged):
        count = body_rng.randint(
            min(spec.participants_min, len(sites)),
            min(spec.participants_max, len(sites)),
        )
        chosen = sorted(body_rng.sample(sites, count))
        txn_id = f"t{index:04d}"
        keys: dict[str, str] = {}
        for site_id in chosen:
            hot = (
                spec.hot_keys > 0
                and body_rng.random() < spec.hot_fraction
            )
            if hot:
                keys[site_id] = f"hot{body_rng.randrange(spec.hot_keys)}"
            else:
                keys[site_id] = f"{txn_id}@{site_id}"
        read_only = body_rng.random() < spec.read_only_fraction
        abort = (
            not read_only and body_rng.random() < spec.abort_fraction
        )
        if placement is not None:
            eligible = [site for site in sites if site not in chosen]
            owner = placement.choose(txn_id, eligible)
        else:
            owner = coordinator
        writes: dict[str, list[WriteOp]] = {}
        reads: dict[str, list[str]] = {}
        if read_only:
            reads = {site_id: [key] for site_id, key in keys.items()}
        else:
            writes = {
                site_id: [WriteOp(key=key, value=txn_id)]
                for site_id, key in keys.items()
            }
        transactions.append(
            GlobalTransaction(
                txn_id=txn_id,
                coordinator=owner,
                writes=writes,
                reads=reads,
                submit_at=submit_at,
                force_no_vote_at=(
                    frozenset({chosen[0]}) if abort else frozenset()
                ),
            )
        )
    return transactions


async def run_open_loop(
    cluster, transactions: list[GlobalTransaction], margin: float = RUN_MARGIN
) -> dict[str, float]:
    """Drive one generated stream through a *started* cluster.

    The whole arrival schedule is handed over up front (open loop: no
    completion feedback into the arrival process), the cluster runs to
    quiescence or the horizon, and the per-transaction decision
    latencies come back in wall seconds. Works against any cluster with
    the live surface (``submit`` / ``run`` / ``decision_latencies``):
    ``LiveCluster``, ``ProcessCluster``, sharded or replicated.
    """
    for txn in transactions:
        cluster.submit(txn)
    horizon = max((txn.submit_at for txn in transactions), default=0.0)
    await cluster.run(until=horizon + margin)
    return cluster.decision_latencies()


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (0 when empty)."""
    if not ordered:
        return 0.0
    index = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[index]


def offered_load_row(
    spec: OpenLoopSpec,
    transactions: list[GlobalTransaction],
    latencies: dict[str, float],
    time_scale: float = 0.01,
) -> dict[str, Any]:
    """One point of the latency-vs-offered-load curve.

    ``achieved`` is decided transactions over the wall span from the
    first scheduled arrival to the last decision — the throughput the
    system actually sustained while the generator offered ``rate``.
    """
    ordered = sorted(latencies.values())
    by_id = {txn.txn_id: txn for txn in transactions}
    decide_walls = [
        by_id[txn_id].submit_at * time_scale + latency
        for txn_id, latency in latencies.items()
        if txn_id in by_id
    ]
    achieved = 0.0
    if decide_walls and transactions:
        first_arrival = min(txn.submit_at for txn in transactions) * time_scale
        span = max(decide_walls) - first_arrival
        achieved = len(ordered) / span if span > 0 else float(len(ordered))
    return {
        "rate": spec.rate,
        "transactions": len(transactions),
        "decided": len(ordered),
        "undecided": len(transactions) - len(ordered),
        "achieved": round(achieved, 2),
        "p50_ms": round(_percentile(ordered, 0.50) * 1000.0, 3),
        "p95_ms": round(_percentile(ordered, 0.95) * 1000.0, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1000.0, 3),
    }


def saturation_knee(
    rows: list[dict[str, Any]],
    p95_factor: float = KNEE_P95_FACTOR,
    achieved_floor: float = KNEE_ACHIEVED_FLOOR,
) -> Optional[float]:
    """The first offered rate (rows in ascending rate order) where the
    system visibly stops keeping up: undecided transactions, achieved
    throughput under ``achieved_floor`` of offered, or p95 latency past
    ``p95_factor`` times the lowest-rate p95. ``None`` when every rate
    holds (the knee is beyond the sweep)."""
    if not rows:
        return None
    base_p95 = rows[0]["p95_ms"]
    for index, row in enumerate(rows):
        if row["undecided"] > 0:
            return row["rate"]
        if row["decided"] and row["achieved"] < achieved_floor * row["rate"]:
            return row["rate"]
        if index > 0 and base_p95 > 0 and row["p95_ms"] > p95_factor * base_p95:
            return row["rate"]
    return None


async def run_rate_sweep(
    cluster_factory: Callable[[float], Awaitable[Any]],
    spec: OpenLoopSpec,
    rates: Sequence[float],
    sites: Sequence[str],
    time_scale: float = 0.01,
    coordinator: str = COORDINATOR_ID,
    placement: Optional[PlacementPolicy] = None,
    margin: float = RUN_MARGIN,
) -> dict[str, Any]:
    """The full latency-vs-offered-load curve.

    ``cluster_factory(rate)`` must return a **started** cluster (a
    fresh one per rate: each point measures a cold system under one
    offered load, not the backlog of the previous point). Every point
    replays identical transaction bodies — only the arrival clock
    differs — and the cluster is finalized, shut down and checked
    before its row is folded in.

    Returns ``{"rows": [...], "knee": rate-or-None}`` with rows in the
    given rate order (pass ascending rates for a meaningful knee).
    """
    rows: list[dict[str, Any]] = []
    for rate in rates:
        at_rate = spec.at_rate(rate)
        transactions = generate_open_loop(
            at_rate,
            sites,
            time_scale=time_scale,
            coordinator=coordinator,
            placement=placement,
        )
        cluster = await cluster_factory(rate)
        try:
            latencies = await run_open_loop(cluster, transactions, margin=margin)
            await cluster.finalize()
        finally:
            await cluster.shutdown()
        reports = cluster.check()
        row = offered_load_row(at_rate, transactions, latencies, time_scale)
        row["checks_ok"] = reports.all_hold
        rows.append(row)
    return {"rows": rows, "knee": saturation_knee(rows)}
