"""Protocol mixes: which 2PC variant each participant site employs.

A :class:`ProtocolMix` is an ordered assignment of commit protocols to
participant sites. The paper's scenarios revolve around three shapes:

* homogeneous (all PrN / all PrA / all PrC) — the safe, boring case
  where §4.1's dynamic selection falls back to the base protocol;
* PrA+PrC — the adversarial mix of Theorems 1 and 2;
* three-way — PrN, PrA and PrC together, the general PrAny case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

_KNOWN = ("PrN", "PrA", "PrC", "IYV", "CL")


@dataclass(frozen=True)
class ProtocolMix:
    """An assignment of participant protocols for a site pool."""

    name: str
    protocols: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.protocols:
            raise WorkloadError(f"mix {self.name!r} has no participants")
        unknown = set(self.protocols) - set(_KNOWN)
        if unknown:
            raise WorkloadError(
                f"mix {self.name!r} uses unknown protocols {sorted(unknown)}"
            )

    def __len__(self) -> int:
        return len(self.protocols)

    @property
    def is_homogeneous(self) -> bool:
        return len(set(self.protocols)) == 1

    @property
    def has_pra_and_prc(self) -> bool:
        """True for the adversarial shape of Theorems 1 and 2."""
        return "PrA" in self.protocols and "PrC" in self.protocols

    def site_protocols(self, prefix: str = "site") -> dict[str, str]:
        """Site id → protocol for a fresh topology using this mix."""
        return {
            f"{prefix}{i}_{protocol.lower()}": protocol
            for i, protocol in enumerate(self.protocols)
        }

    def extended_to(self, n_sites: int) -> "ProtocolMix":
        """The same mix pattern cycled out to ``n_sites`` participants."""
        if n_sites < 1:
            raise WorkloadError(f"need at least one site, got {n_sites}")
        protocols = tuple(
            self.protocols[i % len(self.protocols)] for i in range(n_sites)
        )
        return ProtocolMix(f"{self.name}x{n_sites}", protocols)


def homogeneous(protocol: str, n_sites: int = 2) -> ProtocolMix:
    """All ``n_sites`` participants run ``protocol``."""
    return ProtocolMix(f"all-{protocol}", (protocol,) * n_sites)


def mixed_pra_prc(n_sites: int = 2) -> ProtocolMix:
    """Alternating PrA / PrC participants — the Theorem 1/2 mix."""
    return ProtocolMix("PrA+PrC", ("PrA", "PrC")).extended_to(n_sites)


def three_way(n_sites: int = 3) -> ProtocolMix:
    """PrN, PrA and PrC participants together."""
    return ProtocolMix("PrN+PrA+PrC", ("PrN", "PrA", "PrC")).extended_to(n_sites)


#: The named mixes the experiments sweep over.
MIXES: dict[str, ProtocolMix] = {
    "all-PrN": homogeneous("PrN"),
    "all-PrA": homogeneous("PrA"),
    "all-PrC": homogeneous("PrC"),
    "PrA+PrC": mixed_pra_prc(),
    "PrN+PrC": ProtocolMix("PrN+PrC", ("PrN", "PrC")),
    "PrN+PrA": ProtocolMix("PrN+PrA", ("PrN", "PrA")),
    "PrN+PrA+PrC": three_way(),
    # Extension protocols (paper conclusion; DESIGN.md §6).
    "all-IYV": ProtocolMix("all-IYV", ("IYV", "IYV")),
    "all-CL": ProtocolMix("all-CL", ("CL", "CL")),
    "IYV+PrC": ProtocolMix("IYV+PrC", ("IYV", "PrC")),
    "CL+PrA+PrC": ProtocolMix("CL+PrA+PrC", ("CL", "PrA", "PrC")),
}
