"""Topology building and transaction-stream generation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import WorkloadError
from repro.mdbs.placement import PlacementPolicy
from repro.mdbs.system import MDBS
from repro.mdbs.transaction import GlobalTransaction, WriteOp
from repro.net.batching import NetBatchConfig
from repro.net.network import LatencyModel
from repro.protocols.base import TimeoutConfig
from repro.replication import ReplicationConfig
from repro.sim.rng import RandomStreams
from repro.storage.group_commit import GroupCommitConfig
from repro.workloads.mixes import ProtocolMix

#: Site id used for the coordinating transaction manager.
COORDINATOR_ID = "tm"


def build_mdbs(
    mix: ProtocolMix,
    coordinator: str = "dynamic",
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    timeouts: Optional[TimeoutConfig] = None,
    read_only_optimization: bool = True,
    group_commit: Optional[GroupCommitConfig] = None,
    net_batching: Optional[NetBatchConfig] = None,
    sharded: bool = False,
    service_time: Optional[float] = None,
    replicated: "int | ReplicationConfig" = 0,
) -> MDBS:
    """Build an MDBS with one participant site per mix entry.

    In the default (single-coordinator) topology the coordinator lives
    at its own site (``"tm"``), running PrN as a participant protocol
    (it never participates in these workloads) and the given coordinator
    policy/selector. With ``sharded=True`` there is no ``tm`` site:
    every mix site hosts both its participant engine and a coordinator
    engine running the same policy, and each transaction is placed on
    one of them by the workload generator (see
    :mod:`repro.mdbs.placement`). ``group_commit`` / ``net_batching``
    switch on the group-commit engine (off by default).

    With ``replicated=N`` the ``tm`` coordinator replicates its
    decisions over ``N`` dedicated acceptor sites ``acc0..acc{N-1}``
    via Paxos Commit (see :mod:`repro.replication`); each acceptor
    also hosts a coordinator engine so it can complete in-flight
    transactions after a leader failover. Acceptors never participate
    in workload transactions. Pass a :class:`ReplicationConfig` instead
    of an int to override the membership or liveness timers (e.g. a
    dense benchmark relaxing ``failover_timeout`` above its queueing
    delay, so spurious takeovers never fire).
    """
    if replicated:
        if sharded:
            raise WorkloadError(
                "replicated coordinators require the single-coordinator "
                "topology (sharded=True replicates nothing)"
            )
        unsupported = {
            p for p in mix.site_protocols().values() if p in ("IYV", "CL")
        }
        if unsupported:
            raise WorkloadError(
                f"replication does not support the extension protocols "
                f"{sorted(unsupported)} yet (coordinator-log retention "
                f"and implicit voting are not registered with the quorum)"
            )
    if isinstance(replicated, ReplicationConfig):
        replication = replicated
    elif replicated:
        replication = ReplicationConfig.for_group(
            replicated, leader=COORDINATOR_ID
        )
    else:
        replication = None
    mdbs = MDBS(
        seed=seed,
        latency=latency,
        timeouts=timeouts,
        group_commit=group_commit,
        net_batching=net_batching,
        service_time=service_time,
        replication=replication,
    )
    for site_id, protocol in mix.site_protocols().items():
        mdbs.add_site(
            site_id,
            protocol=protocol,
            coordinator=coordinator if sharded else None,
            read_only_optimization=read_only_optimization,
        )
    if not sharded:
        mdbs.add_site(COORDINATOR_ID, protocol="PrN", coordinator=coordinator)
    if replication is not None:
        for acceptor_id in replication.acceptors:
            mdbs.add_site(
                acceptor_id, protocol="PrN", coordinator=coordinator
            )
    return mdbs


@dataclass(frozen=True)
class WorkloadSpec:
    """A stream of generated transactions.

    Attributes:
        n_transactions: how many transactions to generate.
        abort_fraction: probability that a transaction is forced to
            abort via a No-voting participant.
        participants_min/max: each transaction touches a uniform-random
            number of participants in this range (bounded by the site
            pool size).
        inter_arrival: mean time between submissions (exponential).
        hot_keys: number of shared keys contended across transactions;
            0 gives every transaction private keys (no lock conflicts).
        seed: workload randomness, independent of the simulator seed.
    """

    n_transactions: int = 20
    abort_fraction: float = 0.25
    participants_min: int = 2
    participants_max: int = 3
    inter_arrival: float = 25.0
    hot_keys: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_transactions < 0:
            raise WorkloadError("n_transactions must be non-negative")
        if not 0.0 <= self.abort_fraction <= 1.0:
            raise WorkloadError("abort_fraction must be within [0, 1]")
        if self.participants_min < 1 or self.participants_max < self.participants_min:
            raise WorkloadError(
                f"invalid participant range "
                f"[{self.participants_min}, {self.participants_max}]"
            )


def generate_transactions(
    spec: WorkloadSpec,
    sites: list[str],
    coordinator: str = COORDINATOR_ID,
    placement: Optional[PlacementPolicy] = None,
) -> list[GlobalTransaction]:
    """Generate the transaction stream described by ``spec``.

    Deterministic in ``spec.seed``: the same spec over the same site
    list always yields the same stream.

    With ``placement`` given (sharded coordinators), each transaction's
    coordinator is chosen by the policy from the sites that are *not*
    its participants, instead of the fixed ``coordinator`` id. The RNG
    stream is untouched by placement — participants, keys, arrival
    times and abort decisions are byte-identical to the
    single-coordinator stream for the same spec and site list, which is
    what makes sharded-vs-single runs differential twins.
    """
    if not sites:
        raise WorkloadError("need at least one participant site")
    if placement is not None and spec.participants_max >= len(sites):
        raise WorkloadError(
            f"sharded placement needs a non-participant coordinator for "
            f"every transaction: participants_max={spec.participants_max} "
            f"must be < {len(sites)} sites"
        )
    rng = RandomStreams(spec.seed).stream("workload")
    transactions: list[GlobalTransaction] = []
    now = 0.0
    for index in range(spec.n_transactions):
        now += rng.expovariate(1.0 / spec.inter_arrival)
        count = rng.randint(
            min(spec.participants_min, len(sites)),
            min(spec.participants_max, len(sites)),
        )
        chosen = sorted(rng.sample(sites, count))
        txn_id = f"t{index:04d}"
        writes: dict[str, list[WriteOp]] = {}
        for site_id in chosen:
            if spec.hot_keys > 0:
                key = f"hot{rng.randrange(spec.hot_keys)}"
            else:
                key = f"{txn_id}@{site_id}"
            writes[site_id] = [WriteOp(key=key, value=txn_id)]
        abort = rng.random() < spec.abort_fraction
        if placement is not None:
            # Placement happens *after* the RNG draws so the stream
            # stays identical to the single-coordinator twin's.
            eligible = [site for site in sites if site not in chosen]
            owner = placement.choose(txn_id, eligible)
        else:
            owner = coordinator
        transactions.append(
            GlobalTransaction(
                txn_id=txn_id,
                coordinator=owner,
                writes=writes,
                submit_at=now,
                force_no_vote_at=frozenset({chosen[0]}) if abort else frozenset(),
            )
        )
    return transactions
