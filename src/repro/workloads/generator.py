"""Topology building and transaction-stream generation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import WorkloadError
from repro.mdbs.system import MDBS
from repro.mdbs.transaction import GlobalTransaction, WriteOp
from repro.net.batching import NetBatchConfig
from repro.net.network import LatencyModel
from repro.protocols.base import TimeoutConfig
from repro.sim.rng import RandomStreams
from repro.storage.group_commit import GroupCommitConfig
from repro.workloads.mixes import ProtocolMix

#: Site id used for the coordinating transaction manager.
COORDINATOR_ID = "tm"


def build_mdbs(
    mix: ProtocolMix,
    coordinator: str = "dynamic",
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    timeouts: Optional[TimeoutConfig] = None,
    read_only_optimization: bool = True,
    group_commit: Optional[GroupCommitConfig] = None,
    net_batching: Optional[NetBatchConfig] = None,
) -> MDBS:
    """Build an MDBS with one participant site per mix entry.

    The coordinator lives at its own site (``"tm"``), running PrN as a
    participant protocol (it never participates in these workloads) and
    the given coordinator policy/selector. ``group_commit`` /
    ``net_batching`` switch on the group-commit engine (off by default).
    """
    mdbs = MDBS(
        seed=seed,
        latency=latency,
        timeouts=timeouts,
        group_commit=group_commit,
        net_batching=net_batching,
    )
    for site_id, protocol in mix.site_protocols().items():
        mdbs.add_site(
            site_id,
            protocol=protocol,
            read_only_optimization=read_only_optimization,
        )
    mdbs.add_site(COORDINATOR_ID, protocol="PrN", coordinator=coordinator)
    return mdbs


@dataclass(frozen=True)
class WorkloadSpec:
    """A stream of generated transactions.

    Attributes:
        n_transactions: how many transactions to generate.
        abort_fraction: probability that a transaction is forced to
            abort via a No-voting participant.
        participants_min/max: each transaction touches a uniform-random
            number of participants in this range (bounded by the site
            pool size).
        inter_arrival: mean time between submissions (exponential).
        hot_keys: number of shared keys contended across transactions;
            0 gives every transaction private keys (no lock conflicts).
        seed: workload randomness, independent of the simulator seed.
    """

    n_transactions: int = 20
    abort_fraction: float = 0.25
    participants_min: int = 2
    participants_max: int = 3
    inter_arrival: float = 25.0
    hot_keys: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_transactions < 0:
            raise WorkloadError("n_transactions must be non-negative")
        if not 0.0 <= self.abort_fraction <= 1.0:
            raise WorkloadError("abort_fraction must be within [0, 1]")
        if self.participants_min < 1 or self.participants_max < self.participants_min:
            raise WorkloadError(
                f"invalid participant range "
                f"[{self.participants_min}, {self.participants_max}]"
            )


def generate_transactions(
    spec: WorkloadSpec,
    sites: list[str],
    coordinator: str = COORDINATOR_ID,
) -> list[GlobalTransaction]:
    """Generate the transaction stream described by ``spec``.

    Deterministic in ``spec.seed``: the same spec over the same site
    list always yields the same stream.
    """
    if not sites:
        raise WorkloadError("need at least one participant site")
    rng = RandomStreams(spec.seed).stream("workload")
    transactions: list[GlobalTransaction] = []
    now = 0.0
    for index in range(spec.n_transactions):
        now += rng.expovariate(1.0 / spec.inter_arrival)
        count = rng.randint(
            min(spec.participants_min, len(sites)),
            min(spec.participants_max, len(sites)),
        )
        chosen = sorted(rng.sample(sites, count))
        txn_id = f"t{index:04d}"
        writes: dict[str, list[WriteOp]] = {}
        for site_id in chosen:
            if spec.hot_keys > 0:
                key = f"hot{rng.randrange(spec.hot_keys)}"
            else:
                key = f"{txn_id}@{site_id}"
            writes[site_id] = [WriteOp(key=key, value=txn_id)]
        abort = rng.random() < spec.abort_fraction
        transactions.append(
            GlobalTransaction(
                txn_id=txn_id,
                coordinator=coordinator,
                writes=writes,
                submit_at=now,
                force_no_vote_at=frozenset({chosen[0]}) if abort else frozenset(),
            )
        )
    return transactions
