"""Crash-point catalogues.

A :class:`CrashPoint` names one instant in commit processing at which a
site can fail, expressed as a trace predicate. The Theorem 3 stress
(experiment T3) iterates the full catalogue — every protocol step of
coordinator and participants, for both outcomes — and checks that PrAny
stays atomic and operationally correct through each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.tracing import TraceEvent

Predicate = Callable[[TraceEvent], bool]


@dataclass(frozen=True)
class CrashPoint:
    """One named instant at which a site may crash.

    Attributes:
        name: human-readable label, e.g. ``"coord-after-initiation"``.
        role: ``"coordinator"`` or ``"participant"`` — which site the
            failure is injected at.
        make_predicate: builds the trace predicate for a concrete
            (site, txn) pair.
    """

    name: str
    role: str
    make_predicate: Callable[[str, str], Predicate]


def _log_force_of(record_type: str) -> Callable[[str, str], Predicate]:
    def build(site: str, txn: str) -> Predicate:
        return lambda e: e.matches("log", "append", site=site, type=record_type, txn=txn)

    return build


def _protocol_event(name: str, **extra) -> Callable[[str, str], Predicate]:
    def build(site: str, txn: str) -> Predicate:
        return lambda e: e.matches("protocol", name, site=site, txn=txn, **extra)

    return build


def _msg_send(kind: str) -> Callable[[str, str], Predicate]:
    def build(site: str, txn: str) -> Predicate:
        return lambda e: e.matches("msg", "send", site=site, kind=kind, txn=txn)

    return build


def _msg_send_to(kind: str) -> Callable[[str, str], Predicate]:
    """Crash the *receiver* when ``kind`` is sent to it (lost in flight)."""

    def build(site: str, txn: str) -> Predicate:
        return lambda e: e.matches("msg", "send", kind=kind, txn=txn, to=site)

    return build


def _db_event(name: str) -> Callable[[str, str], Predicate]:
    def build(site: str, txn: str) -> Predicate:
        return lambda e: e.matches("db", name, site=site, txn=txn)

    return build


def coordinator_crash_points() -> list[CrashPoint]:
    """Crash instants at the coordinator, ordered along the protocol."""
    return [
        CrashPoint(
            "coord-after-initiation",
            "coordinator",
            _log_force_of("initiation"),
        ),
        CrashPoint(
            "coord-after-prepare-sent",
            "coordinator",
            _msg_send("PREPARE"),
        ),
        CrashPoint(
            "coord-after-decide",
            "coordinator",
            _protocol_event("decide"),
        ),
        CrashPoint(
            "coord-after-decision-sent-commit",
            "coordinator",
            _msg_send("COMMIT"),
        ),
        CrashPoint(
            "coord-after-decision-sent-abort",
            "coordinator",
            _msg_send("ABORT"),
        ),
        CrashPoint(
            "coord-after-end-append",
            "coordinator",
            _log_force_of("end"),
        ),
    ]


def acceptor_crash_points() -> list[CrashPoint]:
    """Crash instants at a Paxos acceptor (``repro.replication``).

    Acceptor state is a single record vocabulary — every registration,
    promise and accepted decision is an ``accept``-type record forced
    before the reply — so the interesting instants are: the window
    where the 2a proposal is in flight (the acceptor dies holding
    nothing), the window right after the force (the acceptor dies
    holding state the proposer has not yet seen acknowledged), and the
    registration round that precedes every PREPARE fan-out.
    """
    return [
        CrashPoint(
            "acc-before-register",
            "acceptor",
            _msg_send_to("PX_REGISTER"),
        ),
        CrashPoint(
            "acc-before-accept",
            "acceptor",
            _msg_send_to("PX_2A"),
        ),
        CrashPoint(
            "acc-after-accept",
            "acceptor",
            _log_force_of("accept"),
        ),
    ]


def participant_crash_points() -> list[CrashPoint]:
    """Crash instants at a participant, ordered along the protocol."""
    return [
        CrashPoint(
            "part-before-vote",
            "participant",
            _msg_send_to("PREPARE"),
        ),
        CrashPoint(
            "part-after-prepared",
            "participant",
            _db_event("prepared"),
        ),
        CrashPoint(
            "part-before-decision-commit",
            "participant",
            _msg_send_to("COMMIT"),
        ),
        CrashPoint(
            "part-before-decision-abort",
            "participant",
            _msg_send_to("ABORT"),
        ),
        CrashPoint(
            "part-after-enforce-commit",
            "participant",
            _db_event("commit"),
        ),
        CrashPoint(
            "part-after-enforce-abort",
            "participant",
            _db_event("abort"),
        ),
    ]
