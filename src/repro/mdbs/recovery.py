"""Whole-system recovery helpers and recovery-cost accounting.

The per-site mechanics live in :mod:`repro.db.recovery` (local redo /
in-doubt re-adoption) and :mod:`repro.protocols.coordinator` /
:mod:`repro.protocols.recovery` (§4.2 coordinator log analysis). This
module adds what the recovery *experiment* (R1) needs: bring every
down site back, and measure how much work recovery caused.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mdbs.system import MDBS
from repro.sim.tracing import TraceRecorder


@dataclass
class RecoveryCosts:
    """Work performed between a recovery point and quiescence."""

    recovered_sites: list[str] = field(default_factory=list)
    reinitiated_decisions: int = 0
    inquiries: int = 0
    presumed_responses: int = 0
    messages_sent: int = 0
    in_doubt_resolved: int = 0

    def __str__(self) -> str:
        return (
            f"RecoveryCosts(sites={self.recovered_sites}, "
            f"reinitiated={self.reinitiated_decisions}, "
            f"inquiries={self.inquiries}, "
            f"presumed={self.presumed_responses}, "
            f"messages={self.messages_sent}, "
            f"in_doubt_resolved={self.in_doubt_resolved})"
        )


def recover_all_down_sites(mdbs: MDBS) -> list[str]:
    """Recover every crashed site now; returns the recovered site ids."""
    recovered = []
    for site in mdbs.sites.values():
        if not site.is_up:
            site.recover()
            recovered.append(site.site_id)
    return recovered


def measure_recovery(mdbs: MDBS, run_until: float) -> RecoveryCosts:
    """Recover all down sites, run to ``run_until``, and account the work.

    Only events recorded *after* the recovery point are counted, so the
    result isolates recovery-phase traffic from normal processing.
    """
    costs = RecoveryCosts()
    start_seq = len(mdbs.sim.trace)
    costs.recovered_sites = recover_all_down_sites(mdbs)
    mdbs.run(until=run_until)
    costs.reinitiated_decisions = _count_since(
        mdbs.sim.trace, start_seq, "protocol", "decide", recovered=True
    )
    costs.inquiries = _count_since(mdbs.sim.trace, start_seq, "protocol", "inquiry")
    costs.presumed_responses = _count_since(
        mdbs.sim.trace, start_seq, "protocol", "respond", presumed=True
    )
    costs.messages_sent = _count_since(mdbs.sim.trace, start_seq, "msg", "send")
    costs.in_doubt_resolved = _count_since(
        mdbs.sim.trace, start_seq, "db", "commit"
    ) + _count_since(mdbs.sim.trace, start_seq, "db", "abort")
    return costs


def _count_since(
    trace: TraceRecorder, start_seq: int, category: str, name: str, **details
) -> int:
    return sum(
        1
        for event in trace
        if event.seq >= start_seq and event.matches(category, name, **details)
    )
