"""Multidatabase-system layer: sites, transactions, the whole system."""

from repro.mdbs.recovery import (
    RecoveryCosts,
    measure_recovery,
    recover_all_down_sites,
)
from repro.mdbs.site import Site
from repro.mdbs.system import MDBS, RunReports
from repro.mdbs.transaction import GlobalTransaction, WriteOp, simple_transaction

__all__ = [
    "GlobalTransaction",
    "MDBS",
    "RecoveryCosts",
    "RunReports",
    "Site",
    "WriteOp",
    "measure_recovery",
    "recover_all_down_sites",
    "simple_transaction",
]
