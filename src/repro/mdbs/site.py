"""A database site: log + store + local TM + commit-protocol engines.

A :class:`Site` bundles everything that lives at one node of the MDBS:

* a stable log and a KV store with a local transaction manager,
* a participant engine speaking the site's native 2PC variant,
* optionally a coordinator engine (any site may coordinate global
  transactions) with a fixed or dynamic protocol selector,
* crash/recovery orchestration tying all of the above together.

Message dispatch: the network delivers every message addressed to the
site to :meth:`deliver`, which routes by message kind — votes, acks and
inquiries to the coordinator engine; prepares and decisions to the
participant engine.
"""

from __future__ import annotations

from typing import Optional

from repro.db.kv import KVStore
from repro.db.local_tm import LocalTransactionManager
from repro.db.recovery import LocalRecoveryReport, recover_engine
from repro.errors import ProtocolError, SiteDownError
from repro.net.message import Message
from repro.net.network import Network
from repro.protocols.base import (
    ABORT,
    ACK,
    CL_CHECKPOINT,
    CL_RECOVER,
    CL_REDO,
    COMMIT,
    INQUIRY,
    PREPARE,
    TimeoutConfig,
    VOTE_NO,
    VOTE_READ,
    VOTE_YES,
    participant_spec,
)
from repro.protocols.coordinator import CoordinatorEngine
from repro.protocols.participant import ParticipantEngine
from repro.protocols.registry import PolicySelector
from repro.replication import (
    REPLICATION_KINDS,
    ReplicatedDecisionLog,
    ReplicatedSelector,
    ReplicationConfig,
    SiteReplication,
)
from repro.sim.kernel import Simulator
from repro.storage.group_commit import GroupCommitConfig, GroupCommitLog
from repro.storage.pcp import CommitProtocolDirectory
from repro.storage.stable_log import StableLog


class Site:
    """One node of the simulated multidatabase system."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pcp: CommitProtocolDirectory,
        site_id: str,
        protocol: str,
        selector: Optional[PolicySelector] = None,
        timeouts: Optional[TimeoutConfig] = None,
        read_only_optimization: bool = True,
        group_commit: Optional[GroupCommitConfig] = None,
        log: Optional[StableLog] = None,
        store: Optional[KVStore] = None,
        replication: Optional[ReplicationConfig] = None,
    ) -> None:
        """``log`` / ``store`` inject alternative storage backends (the
        live runtime passes file-backed ones); by default the site gets
        the in-memory log (or a group-commit log) and a fresh KV store,
        exactly as before. ``replication`` (when it involves this site)
        wraps the leader's log in the replicating decision log, wraps
        the selector so every transaction registers with the quorum,
        and attaches the per-site replication facade."""
        self._sim = sim
        self._network = network
        self._pcp = pcp
        self._site_id = site_id
        self._protocol = protocol
        self._up = True
        self.crash_count = 0
        if replication is not None and not replication.involves(site_id):
            replication = None

        spec = participant_spec(protocol)
        if log is not None:
            self.log = log
        else:
            self.log = (
                GroupCommitLog(sim, site_id, group_commit)
                if group_commit is not None
                else StableLog(sim, site_id)
            )
        if replication is not None and site_id == replication.leader:
            self.log = ReplicatedDecisionLog(
                self.log, sim, site_id, network, replication
            )
        if replication is not None and selector is not None:
            selector = ReplicatedSelector(selector)
        self.store = store if store is not None else KVStore()
        self.tm = LocalTransactionManager(
            sim,
            site_id,
            self.log,
            self.store,
            force_updates=spec.forces_each_update,
            logless=spec.logless,
        )
        self.participant = ParticipantEngine(
            sim,
            site_id,
            spec,
            self.tm,
            self.log,
            network,
            timeouts,
            read_only_optimization=read_only_optimization,
        )
        self.coordinator: Optional[CoordinatorEngine] = None
        if selector is not None:
            self.coordinator = CoordinatorEngine(
                sim, site_id, self.log, network, pcp, selector, timeouts
            )
        self.replication: Optional[SiteReplication] = None
        if replication is not None:
            self.replication = SiteReplication(sim, network, replication, self)
        network.register(site_id, self.deliver, is_up=lambda: self._up)

    # -- identity / status ------------------------------------------------------

    @property
    def site_id(self) -> str:
        return self._site_id

    @property
    def protocol(self) -> str:
        """The 2PC variant this site employs as a participant."""
        return self._protocol

    @property
    def is_up(self) -> bool:
        return self._up

    # -- message dispatch ----------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Route one delivered message to the right engine."""
        if not self._up:  # defensive; the network already checks liveness
            return
        kind = message.kind
        if kind == PREPARE:
            self.participant.on_prepare(message)
        elif kind in (COMMIT, ABORT):
            self.participant.on_decision(message)
        elif kind in (VOTE_YES, VOTE_NO, VOTE_READ):
            self._require_coordinator().on_vote(message)
        elif kind == ACK:
            self._require_coordinator().on_ack(message)
        elif kind == INQUIRY:
            if self.replication is not None and self.replication.defer_inquiry(
                message
            ):
                return
            self._require_coordinator().on_inquiry(message)
        elif kind == CL_RECOVER:
            self._require_coordinator().on_cl_recover(message)
        elif kind == CL_CHECKPOINT:
            self._require_coordinator().on_cl_checkpoint(message)
        elif kind == CL_REDO:
            self.participant.on_cl_redo(message)
        elif kind in REPLICATION_KINDS:
            if self.replication is None:
                raise ProtocolError(
                    f"site {self._site_id!r} is outside the replication "
                    f"group but received {kind!r}"
                )
            self.replication.on_message(message)
        else:
            raise ProtocolError(
                f"site {self._site_id!r} received unknown message kind {kind!r}"
            )

    def _require_coordinator(self) -> CoordinatorEngine:
        if self.coordinator is None:
            raise ProtocolError(
                f"site {self._site_id!r} has no coordinator engine but "
                f"received coordinator-bound traffic"
            )
        return self.coordinator

    # -- crash / recovery ----------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: all volatile state is lost, the log closes."""
        if not self._up:
            return
        self._up = False
        self.crash_count += 1
        self._sim.record(self._site_id, "site", "crash")
        self.log.crash()
        self.tm.crash()
        self.participant.crash()
        if self.coordinator is not None:
            self.coordinator.crash()
        if self.replication is not None:
            self.replication.crash()

    def recover(self) -> LocalRecoveryReport:
        """Restart: local redo, re-adopt in-doubts, coordinator recovery."""
        if self._up:
            raise SiteDownError(f"site {self._site_id!r} is not down")
        self._up = True
        self._sim.record(self._site_id, "site", "recover")
        self.log.reopen()
        return self._run_recovery()

    def cold_recover(self) -> LocalRecoveryReport:
        """Boot-time recovery for a freshly constructed site.

        The live runtime's restart story: the old process died, a new
        one starts with an *open* log already holding the stable records
        read back from disk (and a durable store snapshot), but with no
        volatile state at all. Runs the same analysis/redo/re-adoption
        sequence as :meth:`recover` without the reopen step — the
        in-simulator behaviour of :meth:`recover` is untouched.
        """
        if not self._up:
            raise SiteDownError(f"site {self._site_id!r} is down")
        self._sim.record(self._site_id, "site", "recover")
        return self._run_recovery()

    def _run_recovery(self) -> LocalRecoveryReport:
        report = recover_engine(self.tm, self.log, self.store)
        in_doubt = {
            txn_id: info["coordinator"]
            for txn_id, info in report.in_doubt.items()
        }
        self.participant.recover(in_doubt)
        self.participant.requeue_decided_gc(
            report.committed, report.aborted, report.implicitly_aborted
        )
        if self.participant.spec.logless:
            # Coordinator-log site: nothing local to analyze — pull the
            # redo state back from the coordinators.
            self.participant.request_cl_recovery(self._pcp.coordinators())
        if self.replication is not None:
            # Acceptor state rebuilds from its ACCEPT records; a leader
            # recovers its coordinator role through the quorum sweep
            # instead of the local-log-only presumption path.
            self.replication.recover()
        elif self.coordinator is not None:
            self.coordinator.recover()
        return report

    # -- operational-correctness views (SiteView protocol) ---------------------------

    def retained_transactions(self) -> set[str]:
        """Transactions still occupying this site's protocol tables."""
        retained = set(self.participant.table.entries())
        if self.coordinator is not None:
            retained |= set(self.coordinator.table.entries())
        retained |= set(self.tm.active_transactions())
        retained |= set(self.tm.in_doubt_transactions())
        return retained

    def uncollected_log_transactions(self) -> set[str]:
        """Transactions with stable records still occupying the log."""
        return self.log.transactions()

    def flush_and_gc(self) -> int:
        """Background flush + checkpoint + GC sweep.

        Models "eventually": the log buffer is flushed, the store is
        checkpointed (committed state becomes durable — the write-ahead
        discipline that makes collecting a committed transaction's redo
        records safe), and then the GC sweep collects every forgotten
        transaction whose cover record is stable.

        Returns:
            Number of transactions whose records were collected.
        """
        if not self._up:
            return 0
        self.log.flush()
        self.tm.checkpoint()
        if self.participant.spec.logless:
            # The checkpoint made pulled/enforced commits durable here;
            # the coordinators may now release our redo records.
            self.participant.announce_checkpoint(self._pcp.coordinators())
        collected = self.participant.collect_garbage()
        if self.coordinator is not None:
            collected += self.coordinator.collect_garbage()
        if self.replication is not None:
            collected += self.replication.collect_garbage()
        return collected

    def __repr__(self) -> str:
        state = "up" if self._up else "down"
        roles = "P+C" if self.coordinator is not None else "P"
        return f"Site({self._site_id!r}, {self._protocol}, {roles}, {state})"
