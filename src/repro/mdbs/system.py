"""The simulated multidatabase system.

:class:`MDBS` wires together the simulator, network, failure injector,
PCP directory and sites, executes global transactions end to end, and
exposes the paper's correctness checks over the finished run:

    >>> mdbs = MDBS(seed=42)
    >>> _ = mdbs.add_site("alpha", protocol="PrA")
    >>> _ = mdbs.add_site("beta", protocol="PrC")
    >>> _ = mdbs.add_site("tm", protocol="PrN", coordinator="dynamic")
    >>> from repro.mdbs.transaction import simple_transaction
    >>> mdbs.submit(simple_transaction("t1", "tm", ["alpha", "beta"]))
    >>> mdbs.run(until=200)
    >>> reports = mdbs.check()
    >>> reports.all_hold
    True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.correctness import (
    AtomicityReport,
    OperationalReport,
    check_atomicity,
    check_operational_correctness,
)
from repro.core.history import History
from repro.core.safe_state import SafeStateReport, check_safe_state
from repro.errors import LockError, ProtocolError, WorkloadError
from repro.mdbs.site import Site
from repro.mdbs.transaction import GlobalTransaction
from repro.net.batching import BatchingNetwork, NetBatchConfig
from repro.net.failures import FailureInjector
from repro.net.network import LatencyModel, Network, ServiceTimeNetwork
from repro.protocols.base import TimeoutConfig, participant_spec
from repro.protocols.registry import selector_for
from repro.replication import ReplicationConfig
from repro.sim.kernel import Simulator
from repro.storage.group_commit import GroupCommitConfig
from repro.storage.pcp import CommitProtocolDirectory


@dataclass
class RunReports:
    """Bundle of the three correctness reports for one run."""

    atomicity: AtomicityReport
    safe_state: SafeStateReport
    operational: OperationalReport

    @property
    def all_hold(self) -> bool:
        return (
            self.atomicity.holds
            and self.safe_state.holds
            and self.operational.holds
        )

    def __str__(self) -> str:
        return "\n".join(
            [str(self.atomicity), str(self.safe_state), str(self.operational)]
        )


def begin_participant_work(site: Site, txn: GlobalTransaction) -> bool:
    """Run ``txn``'s local work (reads, writes, unilateral aborts) at
    one participant site.

    Returns True when a local failure *dooms* the transaction: an
    implicitly prepared (IYV) site has no No-vote channel, so the
    coordinator itself must be told to decide abort. Explicit voters
    handle their own failures by unilateral abort and return False.

    Extracted from :func:`start_transaction` so the multi-process
    cluster (``repro.rt.proc``) can run exactly this logic inside the
    participant's own process and ship only the doomed bit back.
    """
    site_id = site.site_id
    implicitly_prepared = participant_spec(site.protocol).implicitly_prepared
    site.participant.begin_work(txn.txn_id, txn.coordinator)
    try:
        for key in txn.reads.get(site_id, []):
            site.tm.read(txn.txn_id, key)
        for op in txn.writes.get(site_id, []):
            site.tm.write(txn.txn_id, op.key, op.value)
    except LockError:
        if implicitly_prepared:
            return True
        site.participant.unilateral_abort(txn.txn_id)
        return False
    if site_id in txn.force_no_vote_at:
        if implicitly_prepared:
            return True
        site.participant.unilateral_abort(txn.txn_id)
    return False


def start_transaction(
    sim, sites: dict[str, Site], txn: GlobalTransaction
) -> None:
    """Begin one global transaction: local work, then the commit protocol.

    Shared by the simulated :class:`MDBS` and the live cluster
    (``repro.rt.cluster``) so both runtimes submit work identically;
    ``sim`` is anything with ``record`` (a ``Simulator`` or a
    ``LiveRuntime``).
    """
    coordinator_site = sites[txn.coordinator]
    if not coordinator_site.is_up:
        sim.record(txn.coordinator, "system", "txn_not_started", txn=txn.txn_id)
        return
    # An execution failure at an implicitly prepared (IYV) site has
    # no No-vote channel — the coordinator itself must decide abort.
    doomed = False
    for site_id in txn.participants:
        site = sites[site_id]
        if not site.is_up:
            # Explicit voters: the missing vote times out into an
            # abort. Implicit voters cast no vote, so the failure to
            # even start the work must doom the transaction here.
            if participant_spec(site.protocol).implicitly_prepared:
                doomed = True
            continue
        doomed = begin_participant_work(site, txn) or doomed
    assert coordinator_site.coordinator is not None
    coordinator_site.coordinator.begin_commit(
        txn.txn_id,
        txn.participants,
        abort_override=txn.coordinator_abort or doomed,
    )


class MDBS:
    """A multidatabase system under simulation."""

    def __init__(
        self,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        timeouts: Optional[TimeoutConfig] = None,
        group_commit: Optional[GroupCommitConfig] = None,
        net_batching: Optional[NetBatchConfig] = None,
        service_time: Optional[float] = None,
        replication: Optional[ReplicationConfig] = None,
    ) -> None:
        """Args beyond the obvious:

        group_commit: when given, every site's log coalesces forces
            into batched group commits (see ``repro.storage.group_commit``).
        net_batching: when given, same-destination messages piggyback
            into batched delivery events (see ``repro.net.batching``).
            Both default to off, which preserves the paper's
            one-force-per-record / one-event-per-message accounting.
        service_time: when given, each receiver processes deliveries one
            at a time, each taking this many units
            (:class:`~repro.net.network.ServiceTimeNetwork`) — the knob
            that makes receiver-side queuing (a single coordinator's
            contention) visible in virtual time. Mutually exclusive
            with ``net_batching``.
        replication: when given, the sites it involves (leader +
            acceptors) are built with the Paxos Commit layer attached
            (see ``repro.replication``); the acceptor sites themselves
            must still be added via :meth:`add_site`.
        """
        if net_batching is not None and service_time is not None:
            raise WorkloadError(
                "net_batching and service_time are mutually exclusive"
            )
        self.sim = Simulator(seed)
        self.network: Network
        if net_batching is not None:
            self.network = BatchingNetwork(self.sim, latency, net_batching)
        elif service_time is not None:
            self.network = ServiceTimeNetwork(
                self.sim, latency, service_time=service_time
            )
        else:
            self.network = Network(self.sim, latency)
        self.pcp = CommitProtocolDirectory()
        self.failures = FailureInjector(self.sim)
        self.timeouts = timeouts if timeouts is not None else TimeoutConfig()
        self.group_commit = group_commit
        self.replication = replication
        self.sites: dict[str, Site] = {}
        self.submitted: list[GlobalTransaction] = []

    # -- topology ------------------------------------------------------------

    def add_site(
        self,
        site_id: str,
        protocol: str = "PrN",
        coordinator: Optional[str] = None,
        read_only_optimization: bool = True,
    ) -> Site:
        """Create a site.

        Args:
            protocol: the 2PC variant the site employs as a participant
                (``"PrN"``, ``"PrA"`` or ``"PrC"``).
            coordinator: if given, the site can coordinate transactions;
                ``"dynamic"`` selects §4.1's PrAny rule, any policy name
                (``"PrN"``, ``"PrAny"``, ``"U2PC(PrC)"``, ...) fixes it.
            read_only_optimization: whether this site's participant
                engine uses the READ vote for read-only subtransactions
                (on by default; off reproduces unoptimized 2PC).
        """
        if site_id in self.sites:
            raise WorkloadError(f"site {site_id!r} already exists")
        selector = selector_for(coordinator) if coordinator is not None else None
        site = Site(
            self.sim,
            self.network,
            self.pcp,
            site_id,
            protocol,
            selector,
            self.timeouts,
            read_only_optimization=read_only_optimization,
            group_commit=self.group_commit,
            replication=self.replication,
        )
        self.sites[site_id] = site
        self.pcp.register_site(site_id, protocol)
        if coordinator is not None:
            self.pcp.register_coordinator(site_id)
        self.failures.manage(site)
        return site

    def site(self, site_id: str) -> Site:
        return self.sites[site_id]

    # -- execution ------------------------------------------------------------

    def submit(self, txn: GlobalTransaction) -> None:
        """Schedule a global transaction for execution."""
        coordinator_site = self.sites.get(txn.coordinator)
        if coordinator_site is None:
            raise WorkloadError(f"unknown coordinator site {txn.coordinator!r}")
        if coordinator_site.coordinator is None:
            raise ProtocolError(
                f"site {txn.coordinator!r} cannot coordinate (no engine); "
                f"pass coordinator=... to add_site"
            )
        unknown = (set(txn.writes) | set(txn.reads)) - set(self.sites)
        if unknown:
            raise WorkloadError(
                f"transaction {txn.txn_id!r} references unknown sites "
                f"{sorted(unknown)}"
            )
        self.submitted.append(txn)
        self.sim.schedule_at(
            txn.submit_at,
            lambda: self._start(txn),
            label=f"start {txn.txn_id}",
        )

    def _start(self, txn: GlobalTransaction) -> None:
        start_transaction(self.sim, self.sites, txn)

    def enable_periodic_flush(self, interval: float, until: float) -> None:
        """Flush every site's log buffer periodically (background I/O).

        Disabled by default so the adversarial lazy-record-loss windows
        of Theorem 1 are reachable deterministically (DESIGN.md §5.3);
        the vulnerability-window ablation turns it on to show how the
        window narrows. Flushing stops at ``until`` so the simulation
        can still quiesce.
        """
        if interval <= 0:
            raise WorkloadError(f"flush interval must be positive: {interval!r}")

        def flush_all(at: float) -> None:
            for site in self.sites.values():
                if site.is_up:
                    site.log.flush()
            next_at = at + interval
            if next_at <= until:
                self.sim.schedule_at(
                    next_at, lambda: flush_all(next_at), label="periodic flush"
                )

        self.sim.schedule_at(
            interval, lambda: flush_all(interval), label="periodic flush"
        )

    def run(self, until: Optional[float] = None, max_steps: int = 10_000_000) -> None:
        """Advance the simulation (see :meth:`Simulator.run`)."""
        self.sim.run(until=until, max_steps=max_steps)

    def finalize(self, max_rounds: int = 5) -> None:
        """Flush logs and sweep GC until no further progress.

        Models "eventually": background flushes make lazy records
        stable, which licenses the pending garbage collection. Does not
        advance the simulation — protocols with undying retry timers
        (C2PC waiting for acks that never come) would otherwise spin.
        """
        for round_index in range(max_rounds):
            collected = sum(
                site.flush_and_gc() for site in self.sites.values() if site.is_up
            )
            # Let checkpoint/GC coordination messages (coordinator log)
            # flow — bounded, so undying retry timers (C2PC) can't spin.
            self.run(until=self.sim.now + 10.0)
            if collected == 0 and round_index > 0:
                break

    # -- checking ----------------------------------------------------------------

    def history(self) -> History:
        return History.from_trace(self.sim.trace)

    def check(self) -> RunReports:
        """Run all three checkers over the current run state."""
        history = self.history()
        return RunReports(
            atomicity=check_atomicity(history, self.sim.trace),
            safe_state=check_safe_state(history),
            operational=check_operational_correctness(
                self.sites.values(), history, self.sim.trace
            ),
        )

    def __repr__(self) -> str:
        return (
            f"MDBS(sites={len(self.sites)}, txns={len(self.submitted)}, "
            f"now={self.sim.now})"
        )
