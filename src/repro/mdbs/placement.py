"""Coordinator placement: which site coordinates which transaction.

With sharded coordinators every site hosts both a participant engine and
a coordinator engine, and each transaction is *placed* on one of them.
A :class:`PlacementPolicy` maps a transaction id plus the set of
coordinator-capable sites eligible for it (a transaction's coordinator
must not also be one of its participants) to the owning site.

Placement must be deterministic across processes and runs: the live
cluster, the multi-process supervisor and the simulator all place the
same transaction stream independently and must agree byte for byte.
That rules out the builtin ``hash`` (salted per process via
``PYTHONHASHSEED``); :class:`HashPlacement` hashes with SHA-256 instead.
"""

from __future__ import annotations

import hashlib
from typing import Protocol, Sequence

from repro.errors import WorkloadError


class PlacementPolicy(Protocol):
    """Chooses the coordinating site for a transaction."""

    def choose(self, txn_id: str, eligible: Sequence[str]) -> str:
        """Return the owning coordinator for ``txn_id``.

        ``eligible`` is the set of coordinator-capable sites that are
        not participants of this transaction; it is never empty.
        """
        ...


class HashPlacement:
    """``sha256(txn_id) mod |eligible|`` over the sorted eligible set.

    Stateless and history-free: the same transaction id always lands on
    the same site given the same eligible set, regardless of submission
    order, process boundaries or interleaving — which is what lets the
    sharded runtimes and the simulator agree on ownership.
    """

    name = "hash"

    def choose(self, txn_id: str, eligible: Sequence[str]) -> str:
        ordered = sorted(eligible)
        if not ordered:
            raise WorkloadError(
                f"transaction {txn_id!r} has no eligible coordinator"
            )
        digest = hashlib.sha256(txn_id.encode("utf-8")).digest()
        return ordered[int.from_bytes(digest[:8], "big") % len(ordered)]


class RoundRobinPlacement:
    """Cycle through coordinators in sorted order of first sighting.

    Stateful: deterministic for a fixed submission order, but two
    processes placing different prefixes of the stream diverge. Use it
    where one process owns placement for the whole stream (the workload
    generator does) — not for independent re-derivation.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, txn_id: str, eligible: Sequence[str]) -> str:
        ordered = sorted(eligible)
        if not ordered:
            raise WorkloadError(
                f"transaction {txn_id!r} has no eligible coordinator"
            )
        site = ordered[self._next % len(ordered)]
        self._next += 1
        return site


#: Placement policy names accepted by the CLI and the workload builders.
PLACEMENTS = {
    "hash": HashPlacement,
    "round-robin": RoundRobinPlacement,
}


def placement_for(name: str) -> PlacementPolicy:
    """Instantiate the placement policy registered under ``name``."""
    try:
        factory = PLACEMENTS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown placement policy {name!r}; "
            f"known: {sorted(PLACEMENTS)}"
        )
    return factory()
