"""Global transactions.

A :class:`GlobalTransaction` describes a unit of distributed work: the
coordinating site, and a set of writes at each participant site. The
MDBS layer executes the writes through each site's local transaction
manager and then runs the coordinator's commit protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WriteOp:
    """One write of a subtransaction."""

    key: str
    value: Any


@dataclass
class GlobalTransaction:
    """Specification of one distributed transaction.

    Attributes:
        txn_id: globally unique id.
        coordinator: site id of the coordinating transaction manager.
        writes: participant site id → list of writes to perform there.
        submit_at: virtual time at which the transaction arrives.
        force_no_vote_at: participant sites that will unilaterally abort
            before voting (simulating an integrity violation or local
            failure) — the knob workloads use to produce aborted
            transactions deterministically.
        coordinator_abort: the coordinator decides abort even after a
            unanimous Yes vote (a coordinator-side abort reason) — this
            is how the paper's abort-case figures arise with every
            participant prepared.
    """

    txn_id: str
    coordinator: str
    writes: dict[str, list[WriteOp]] = field(default_factory=dict)
    #: Participant site → keys to read there. A site appearing only in
    #: ``reads`` is a *read-only participant*: under the read-only
    #: optimization it votes READ and drops out of the decision phase.
    reads: dict[str, list[str]] = field(default_factory=dict)
    submit_at: float = 0.0
    force_no_vote_at: frozenset[str] = frozenset()
    coordinator_abort: bool = False

    def __post_init__(self) -> None:
        if not self.txn_id:
            raise WorkloadError("transaction id must be non-empty")
        if not self.writes and not self.reads:
            raise WorkloadError(
                f"transaction {self.txn_id!r} has no participants"
            )
        touched = set(self.writes) | set(self.reads)
        if self.coordinator in touched:
            raise WorkloadError(
                f"transaction {self.txn_id!r}: the coordinator site must "
                f"not also be a participant in this model (use a separate "
                f"participant site)"
            )
        unknown_no_voters = set(self.force_no_vote_at) - touched
        if unknown_no_voters:
            raise WorkloadError(
                f"transaction {self.txn_id!r}: no-vote sites "
                f"{sorted(unknown_no_voters)} are not participants"
            )

    @property
    def participants(self) -> list[str]:
        """Participant site ids, in a stable order."""
        return sorted(set(self.writes) | set(self.reads))

    @property
    def read_only_sites(self) -> set[str]:
        """Participants that only read (candidates for the READ vote)."""
        return set(self.reads) - set(self.writes)

    @property
    def will_abort(self) -> bool:
        """True if the specification guarantees an abort outcome."""
        return bool(self.force_no_vote_at) or self.coordinator_abort

    # -- wire form (the multi-process cluster ships transactions as JSON) --

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form; values must themselves be JSON-safe."""
        return {
            "txn_id": self.txn_id,
            "coordinator": self.coordinator,
            "writes": {
                site: [[op.key, op.value] for op in ops]
                for site, ops in self.writes.items()
            },
            "reads": {site: list(keys) for site, keys in self.reads.items()},
            "submit_at": self.submit_at,
            "force_no_vote_at": sorted(self.force_no_vote_at),
            "coordinator_abort": self.coordinator_abort,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GlobalTransaction":
        """Rebuild a transaction from :meth:`to_dict` output.

        Raises:
            WorkloadError: on a malformed dict.
        """
        try:
            return cls(
                txn_id=data["txn_id"],
                coordinator=data["coordinator"],
                writes={
                    site: [WriteOp(key=key, value=value) for key, value in ops]
                    for site, ops in data["writes"].items()
                },
                reads={
                    site: list(keys) for site, keys in data["reads"].items()
                },
                submit_at=data.get("submit_at", 0.0),
                force_no_vote_at=frozenset(data.get("force_no_vote_at", ())),
                coordinator_abort=data.get("coordinator_abort", False),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(f"malformed transaction dict: {exc}")


def simple_transaction(
    txn_id: str,
    coordinator: str,
    participants: Iterable[str],
    submit_at: float = 0.0,
    abort: bool = False,
) -> GlobalTransaction:
    """Build a one-write-per-participant transaction.

    Each participant writes ``txn_id`` into its own key, which makes
    post-run state checks trivial: a committed transaction's id is
    visible at every participant, an aborted one's nowhere.

    Args:
        abort: when True, the first participant refuses to prepare, so
            the coordinator is guaranteed to decide abort.
    """
    participants = sorted(participants)
    if not participants:
        raise WorkloadError(f"transaction {txn_id!r} needs participants")
    writes = {
        site: [WriteOp(key=f"{txn_id}@{site}", value=txn_id)]
        for site in participants
    }
    no_vote = frozenset({participants[0]}) if abort else frozenset()
    return GlobalTransaction(
        txn_id=txn_id,
        coordinator=coordinator,
        writes=writes,
        submit_at=submit_at,
        force_no_vote_at=no_vote,
    )
