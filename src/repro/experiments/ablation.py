"""Experiment A1 — the vulnerability window of lazy decision records.

Theorem 1's Part III hinges on a *window*: the PrA participant enforces
the abort, writes a **non-forced** abort record, and crashes before
that record reaches stable storage. This ablation maps the window:

* sweep the crash delay after the enforcement (0 = exactly at the
  protocol step, larger = the crash lands later), and
* toggle periodic background flushing of the log buffer.

Expected shape (and the reason DESIGN.md §5.3 disables background
flushing by default): under U2PC the violation occurs whenever the
crash beats the record to stable storage — *always* without a flusher,
and for every delay shorter than the flush interval with one. The
window narrows with flushing but never closes at delay zero, which is
exactly why Theorem 1 is an impossibility and not an engineering bug.
PrAny, run under the identical schedules, never violates regardless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.report import render_table
from repro.mdbs.system import MDBS
from repro.mdbs.transaction import GlobalTransaction, WriteOp

_PRA_SITE = "alpha_pra"
_PRC_SITE = "beta_prc"
_COORD = "tm"


@dataclass
class WindowPoint:
    coordinator_policy: str
    crash_delay: float
    flush_interval: Optional[float]
    violated: bool
    abort_record_survived: bool


@dataclass
class AblationResult:
    points: list[WindowPoint] = field(default_factory=list)

    def point(
        self, policy: str, delay: float, flush: Optional[float]
    ) -> WindowPoint:
        for p in self.points:
            if (
                p.coordinator_policy == policy
                and p.crash_delay == delay
                and p.flush_interval == flush
            ):
                return p
        raise KeyError((policy, delay, flush))

    @property
    def u2pc_window_never_closes_at_zero_delay(self) -> bool:
        """At delay 0 the record can never be stable first: always violated."""
        return all(
            p.violated
            for p in self.points
            if p.coordinator_policy.startswith("U2PC") and p.crash_delay == 0.0
        )

    @property
    def flushing_narrows_the_window(self) -> bool:
        """With a flusher, a late-enough crash finds the record stable."""
        flushed_late = [
            p
            for p in self.points
            if p.coordinator_policy.startswith("U2PC")
            and p.flush_interval is not None
            and p.crash_delay > p.flush_interval
        ]
        return bool(flushed_late) and all(not p.violated for p in flushed_late)

    @property
    def unflushed_window_is_unbounded(self) -> bool:
        """Without background flushing the record stays volatile forever."""
        return all(
            p.violated
            for p in self.points
            if p.coordinator_policy.startswith("U2PC") and p.flush_interval is None
        )

    @property
    def prany_never_violates(self) -> bool:
        return not any(
            p.violated for p in self.points if p.coordinator_policy == "dynamic"
        )


def _run_point(
    policy: str, delay: float, flush_interval: Optional[float], seed: int
) -> WindowPoint:
    mdbs = MDBS(seed=seed)
    mdbs.add_site(_PRA_SITE, protocol="PrA")
    mdbs.add_site(_PRC_SITE, protocol="PrC")
    mdbs.add_site(_COORD, protocol="PrN", coordinator=policy)
    if flush_interval is not None:
        mdbs.enable_periodic_flush(flush_interval, until=100.0)
    mdbs.failures.crash_when(
        _PRA_SITE,
        lambda e: e.matches("db", "abort", site=_PRA_SITE, txn="t1"),
        down_for=60.0,
        delay=delay,
    )
    mdbs.submit(
        GlobalTransaction(
            txn_id="t1",
            coordinator=_COORD,
            writes={_PRA_SITE: [WriteOp("a", 1)], _PRC_SITE: [WriteOp("b", 2)]},
            coordinator_abort=True,
        )
    )
    mdbs.run(until=500)
    mdbs.finalize()
    reports = mdbs.check()
    # Did the lazy abort record make it to stable storage before the crash?
    crash = mdbs.sim.trace.first(category="log", name="crash", site=_PRA_SITE)
    survived = (crash.details.get("lost_records", 0) == 0) if crash else True
    return WindowPoint(
        coordinator_policy=policy,
        crash_delay=delay,
        flush_interval=flush_interval,
        violated=not reports.atomicity.holds,
        abort_record_survived=survived,
    )


def run_ablation(
    delays: tuple[float, ...] = (0.0, 0.5, 1.5, 3.0, 6.0),
    flush_intervals: tuple[Optional[float], ...] = (None, 1.0, 4.0),
    seed: int = 7,
) -> AblationResult:
    """Sweep crash delay × flush interval under U2PC(PrC) and PrAny."""
    result = AblationResult()
    for policy in ("U2PC(PrC)", "dynamic"):
        for flush in flush_intervals:
            for delay in delays:
                result.points.append(_run_point(policy, delay, flush, seed))
    return result


def render_ablation(result: AblationResult) -> str:
    rows = [
        [
            p.coordinator_policy,
            "off" if p.flush_interval is None else f"every {p.flush_interval}",
            p.crash_delay,
            "yes" if p.abort_record_survived else "LOST",
            "VIOLATED" if p.violated else "atomic",
        ]
        for p in result.points
    ]
    table = render_table(
        ["coordinator", "bg flush", "crash delay", "abort record stable", "outcome"],
        rows,
        title="A1 — vulnerability window of the lazy abort record (Thm 1 Part III)",
    )
    notes = [
        f"U2PC violated at delay 0 in every configuration: "
        f"{result.u2pc_window_never_closes_at_zero_delay}",
        f"flushing closes the window for late crashes: "
        f"{result.flushing_narrows_the_window}",
        f"without flushing the window is unbounded: "
        f"{result.unflushed_window_is_unbounded}",
        f"PrAny never violated anywhere: {result.prany_never_violates}",
    ]
    return table + "\n" + "\n".join(notes)
