"""Experiment T3 — Theorem 3, empirically.

    "The PrAny protocol satisfies the operational correctness
    criterion."

Two stress phases, both under the dynamic PrAny coordinator:

1. **Exhaustive crash points**: for every protocol mix × outcome ×
   crash point in the catalogue (every coordinator and participant
   protocol step), run a transaction with exactly that crash injected
   and check all three properties — atomicity, SafeState at every
   forget, and operational correctness after quiescence.
2. **Randomized outages**: multi-transaction workloads with random
   timed crashes of random sites, across seeds.

The expectation (the theorem): zero violations anywhere, and nothing
retained once the system quiesces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.report import render_table
from repro.mdbs.system import MDBS
from repro.mdbs.transaction import GlobalTransaction, WriteOp
from repro.net.failures import CrashSchedule
from repro.sim.rng import RandomStreams
from repro.workloads.failure_schedules import (
    CrashPoint,
    coordinator_crash_points,
    participant_crash_points,
)
from repro.workloads.generator import (
    COORDINATOR_ID,
    WorkloadSpec,
    build_mdbs,
    generate_transactions,
)
from repro.workloads.mixes import MIXES, ProtocolMix


@dataclass
class StressCase:
    """One stress run and its verdict."""

    label: str
    atomic: bool
    safe: bool
    operational: bool
    stuck_in_doubt: int

    @property
    def passed(self) -> bool:
        return self.atomic and self.safe and self.operational and not self.stuck_in_doubt


@dataclass
class Theorem3Result:
    cases: list[StressCase] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.cases)

    @property
    def failures(self) -> list[StressCase]:
        return [c for c in self.cases if not c.passed]

    @property
    def theorem_demonstrated(self) -> bool:
        return self.runs > 0 and not self.failures


def _single_txn_run(
    mix: ProtocolMix,
    outcome: str,
    crash_point: Optional[CrashPoint],
    crash_site: Optional[str],
    seed: int,
) -> StressCase:
    mdbs = build_mdbs(mix, coordinator="dynamic", seed=seed)
    participants = sorted(mix.site_protocols())
    txn = GlobalTransaction(
        txn_id="t-stress",
        coordinator=COORDINATOR_ID,
        writes={site: [WriteOp(f"k@{site}", 1)] for site in participants},
        coordinator_abort=outcome == "abort",
    )
    label_parts = [mix.name, outcome]
    if crash_point is not None and crash_site is not None:
        mdbs.failures.crash_when(
            crash_site,
            crash_point.make_predicate(crash_site, txn.txn_id),
            down_for=60.0,
            label=crash_point.name,
        )
        label_parts.append(f"{crash_point.name}@{crash_site}")
    mdbs.submit(txn)
    mdbs.run(until=800)
    mdbs.finalize()
    reports = mdbs.check()
    return StressCase(
        label=" / ".join(label_parts),
        atomic=reports.atomicity.holds,
        safe=reports.safe_state.holds,
        operational=reports.operational.holds,
        stuck_in_doubt=len(reports.atomicity.stuck_in_doubt),
    )


def _randomized_run(mix: ProtocolMix, seed: int) -> StressCase:
    mdbs = build_mdbs(mix, coordinator="dynamic", seed=seed)
    sites = sorted(mix.site_protocols())
    spec = WorkloadSpec(
        n_transactions=10,
        abort_fraction=0.3,
        participants_min=2,
        participants_max=min(3, len(sites)),
        inter_arrival=30.0,
        seed=seed,
    )
    transactions = generate_transactions(spec, sites)
    horizon = max(t.submit_at for t in transactions) + 100.0
    rng = RandomStreams(seed).stream("crash-schedule")
    for victim in rng.sample([*sites, COORDINATOR_ID], k=2):
        at = rng.uniform(10.0, horizon * 0.6)
        mdbs.failures.schedule(
            CrashSchedule(site_id=victim, at=at, down_for=rng.uniform(20.0, 80.0))
        )
    for txn in transactions:
        mdbs.submit(txn)
    mdbs.run(until=horizon + 600.0)
    mdbs.finalize()
    reports = mdbs.check()
    return StressCase(
        label=f"random / {mix.name} / seed={seed}",
        atomic=reports.atomicity.holds,
        safe=reports.safe_state.holds,
        operational=reports.operational.holds,
        stuck_in_doubt=len(reports.atomicity.stuck_in_doubt),
    )


def run_theorem3(
    mixes: tuple[str, ...] = (
        "PrA+PrC",
        "PrN+PrA+PrC",
        "all-PrN",
        "all-PrA",
        "all-PrC",
        # Extension protocols (DESIGN.md §6) under the same stress.
        "IYV+PrC",
        "CL+PrA+PrC",
        "all-IYV",
        "all-CL",
    ),
    random_seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    seed: int = 11,
) -> Theorem3Result:
    """Run both stress phases; see the module docstring."""
    result = Theorem3Result()
    catalogue = coordinator_crash_points() + participant_crash_points()
    for mix_name in mixes:
        mix = MIXES[mix_name]
        participants = sorted(mix.site_protocols())
        for outcome in ("commit", "abort"):
            # Baseline without any failure.
            result.cases.append(_single_txn_run(mix, outcome, None, None, seed))
            for point in catalogue:
                if point.role == "coordinator":
                    victims = [COORDINATOR_ID]
                else:
                    victims = participants
                for victim in victims:
                    result.cases.append(
                        _single_txn_run(mix, outcome, point, victim, seed)
                    )
    for mix_name in mixes[:3]:
        for rand_seed in random_seeds:
            result.cases.append(_randomized_run(MIXES[mix_name], rand_seed))
    return result


def render_theorem3(result: Theorem3Result) -> str:
    header = (
        f"T3 — Theorem 3: PrAny operational correctness under "
        f"{result.runs} adversarial runs"
    )
    lines = [header, "=" * len(header)]
    lines.append(
        f"runs: {result.runs}; failures: {len(result.failures)}"
    )
    if result.failures:
        rows = [
            [c.label, c.atomic, c.safe, c.operational, c.stuck_in_doubt]
            for c in result.failures
        ]
        lines.append(
            render_table(
                ["case", "atomic", "safe", "operational", "stuck"],
                rows,
                title="FAILING CASES",
            )
        )
    verdict = "DEMONSTRATED" if result.theorem_demonstrated else "NOT demonstrated"
    lines.append(f"Theorem 3 {verdict}")
    return "\n".join(lines)
