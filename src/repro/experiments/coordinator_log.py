"""Experiment C7 — Coordinator Log vs basic 2PC.

The conclusion's second named integration target (ref [17]): in CL the
participants write **nothing** to local stable storage — their redo
records ride to the coordinator on the Yes vote and stabilize with the
coordinator's single decision force. We measure what moves where:

* participant-side forced writes drop to zero (vs 2 per participant
  under PrN);
* the coordinator's log grows with the participants' update volume
  (it now holds everyone's redo);
* a crashed participant recovers by *pulling* (CL_RECOVER/CL_REDO)
  instead of local log analysis — we count the pulled transactions;
* the operational-correctness angle: the coordinator can only forget a
  committed transaction after every log-less participant checkpoints
  (CL_CHECKPOINT), which the GC gating enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import render_table
from repro.mdbs.system import MDBS
from repro.mdbs.transaction import GlobalTransaction, WriteOp


@dataclass
class CLPoint:
    protocol: str
    n_transactions: int
    participant_forces: int
    coordinator_forces: int
    coordinator_log_appends: int
    redo_pulled_txns: int
    correct: bool


@dataclass
class CLResult:
    points: list[CLPoint] = field(default_factory=list)

    def point(self, protocol: str) -> CLPoint:
        for p in self.points:
            if p.protocol == protocol:
                return p
        raise KeyError(protocol)

    @property
    def cl_participants_force_nothing(self) -> bool:
        return self.point("CL").participant_forces == 0

    @property
    def cl_moves_log_volume_to_coordinator(self) -> bool:
        return (
            self.point("CL").coordinator_log_appends
            > self.point("PrN").coordinator_log_appends
        )

    @property
    def cl_recovery_pulls_redo(self) -> bool:
        return self.point("CL").redo_pulled_txns > 0

    @property
    def all_correct(self) -> bool:
        return all(p.correct for p in self.points)


def _measure(protocol: str, n_transactions: int, seed: int) -> CLPoint:
    mdbs = MDBS(seed=seed)
    mdbs.add_site("p1", protocol=protocol)
    mdbs.add_site("p2", protocol=protocol)
    mdbs.add_site("tm", protocol="PrN", coordinator="dynamic")
    for i in range(n_transactions):
        mdbs.submit(
            GlobalTransaction(
                txn_id=f"t{i:02d}",
                coordinator="tm",
                writes={
                    "p1": [WriteOp(f"t{i}@p1", i), WriteOp(f"u{i}@p1", i)],
                    "p2": [WriteOp(f"t{i}@p2", i)],
                },
                submit_at=i * 30.0,
            )
        )
    mdbs.run(until=n_transactions * 30.0 + 100.0)
    # Crash p1 mid-life (after the workload) and recover it: PrN replays
    # its own log; CL pulls redo from the coordinator.
    mdbs.site("p1").crash()
    mdbs.site("p1").recover()
    mdbs.run(until=n_transactions * 30.0 + 400.0)
    mdbs.finalize()
    reports = mdbs.check()
    redo_pulled = sum(
        e.details.get("txns", 0)
        for e in mdbs.sim.trace.select(category="protocol", name="cl_redo")
    )
    return CLPoint(
        protocol=protocol,
        n_transactions=n_transactions,
        participant_forces=(
            mdbs.site("p1").log.force_count + mdbs.site("p2").log.force_count
        ),
        coordinator_forces=mdbs.site("tm").log.force_count,
        coordinator_log_appends=mdbs.site("tm").log.append_count,
        redo_pulled_txns=redo_pulled,
        correct=reports.all_hold,
    )


def run_cl_experiment(n_transactions: int = 8, seed: int = 37) -> CLResult:
    """Compare an all-CL with an all-PrN participant set."""
    result = CLResult()
    for protocol in ("PrN", "CL"):
        result.points.append(_measure(protocol, n_transactions, seed))
    return result


def render_cl(result: CLResult) -> str:
    rows = [
        [
            p.protocol,
            p.n_transactions,
            p.participant_forces,
            p.coordinator_forces,
            p.coordinator_log_appends,
            p.redo_pulled_txns,
            "yes" if p.correct else "NO",
        ]
        for p in result.points
    ]
    table = render_table(
        [
            "participants",
            "txns",
            "participant forces",
            "coord forces",
            "coord log appends",
            "redo txns pulled",
            "correct",
        ],
        rows,
        title="C7 — coordinator log: the participants' log moves to the coordinator",
    )
    notes = [
        f"CL participants force nothing: {result.cl_participants_force_nothing}",
        f"log volume moved to the coordinator: "
        f"{result.cl_moves_log_volume_to_coordinator}",
        f"recovery pulled redo from the coordinator: "
        f"{result.cl_recovery_pulls_redo}",
    ]
    return table + "\n" + "\n".join(notes)
