"""Experiment T1 — Theorem 1, empirically.

    "It is impossible to ensure global atomicity of distributed
    transactions executed at both PrA and PrC participants with a
    coordinator using U2PC."

The proof has three parts — coordinator native protocol PrN, PrA and
PrC. Each part names an adversarial schedule; we inject exactly that
schedule and observe the atomicity violation, then replay the identical
schedule under the PrAny coordinator and observe none.

* **Part I / II** (native PrN / PrA, commit case): the PrC participant
  crashes before the commit decision reaches it; the coordinator
  forgets after the PrA participant's ack; the recovered PrC
  participant's inquiry is answered *abort* by the native presumption.
* **Part III** (native PrC, abort case): the PrA participant crashes
  right after enforcing the abort, before its lazy abort record is
  stable; the coordinator forgets after the PrC participant's ack; the
  recovered PrA participant's inquiry is answered *commit* by the PrC
  presumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import render_table
from repro.mdbs.system import MDBS, RunReports
from repro.mdbs.transaction import GlobalTransaction, WriteOp

_COORD = "tm"
_PRA_SITE = "alpha_pra"
_PRC_SITE = "beta_prc"


@dataclass
class ScenarioOutcome:
    """Result of one (proof part, coordinator policy) run."""

    part: str
    coordinator_policy: str
    atomicity_violations: int
    safe_state_violations: int
    outcomes: dict[str, str] = field(default_factory=dict)

    @property
    def violated(self) -> bool:
        return self.atomicity_violations > 0


@dataclass
class Theorem1Result:
    """All proof parts under U2PC and under PrAny."""

    scenarios: list[ScenarioOutcome] = field(default_factory=list)

    @property
    def u2pc_all_violate(self) -> bool:
        """Every U2PC proof part showed the predicted violation."""
        u2pc = [s for s in self.scenarios if s.coordinator_policy.startswith("U2PC")]
        return bool(u2pc) and all(s.violated for s in u2pc)

    @property
    def prany_never_violates(self) -> bool:
        """PrAny survived every adversarial schedule."""
        prany = [s for s in self.scenarios if s.coordinator_policy == "dynamic"]
        return bool(prany) and not any(s.violated for s in prany)

    @property
    def theorem_demonstrated(self) -> bool:
        return self.u2pc_all_violate and self.prany_never_violates


def _build(coordinator_policy: str, seed: int) -> MDBS:
    mdbs = MDBS(seed=seed)
    mdbs.add_site(_PRA_SITE, protocol="PrA")
    mdbs.add_site(_PRC_SITE, protocol="PrC")
    mdbs.add_site(_COORD, protocol="PrN", coordinator=coordinator_policy)
    return mdbs


def _commit_case_schedule(mdbs: MDBS) -> GlobalTransaction:
    """Parts I and II: commit decision; PrC participant misses it."""
    mdbs.failures.crash_when(
        _PRC_SITE,
        lambda e: e.matches("msg", "send", site=_COORD, kind="COMMIT", to=_PRC_SITE),
        down_for=60.0,
        label="PrC participant crashes before the commit arrives",
    )
    return GlobalTransaction(
        txn_id="t1",
        coordinator=_COORD,
        writes={
            _PRA_SITE: [WriteOp("a", 1)],
            _PRC_SITE: [WriteOp("b", 2)],
        },
    )


def _abort_case_schedule(mdbs: MDBS) -> GlobalTransaction:
    """Part III: abort decision; PrA participant loses its lazy record."""
    mdbs.failures.crash_when(
        _PRA_SITE,
        lambda e: e.matches("db", "abort", site=_PRA_SITE, txn="t1"),
        down_for=60.0,
        label="PrA participant crashes after enforcing, before stability",
    )
    return GlobalTransaction(
        txn_id="t1",
        coordinator=_COORD,
        writes={
            _PRA_SITE: [WriteOp("a", 1)],
            _PRC_SITE: [WriteOp("b", 2)],
        },
        coordinator_abort=True,
    )


_PARTS = {
    "Part I (PrN commit)": ("U2PC(PrN)", _commit_case_schedule),
    "Part II (PrA commit)": ("U2PC(PrA)", _commit_case_schedule),
    "Part III (PrC abort)": ("U2PC(PrC)", _abort_case_schedule),
}


def _run_one(
    part: str, coordinator_policy: str, schedule, seed: int
) -> ScenarioOutcome:
    mdbs = _build(coordinator_policy, seed)
    mdbs.submit(schedule(mdbs))
    mdbs.run(until=500)
    mdbs.finalize()
    reports: RunReports = mdbs.check()
    outcomes = {
        site: outcome.value
        for site, outcome in mdbs.history().enforcements("t1").items()
    }
    return ScenarioOutcome(
        part=part,
        coordinator_policy=coordinator_policy,
        atomicity_violations=len(reports.atomicity.violations),
        safe_state_violations=len(reports.safe_state.violations),
        outcomes=outcomes,
    )


def run_theorem1(seed: int = 7) -> Theorem1Result:
    """Run all three proof parts under U2PC, then under PrAny."""
    result = Theorem1Result()
    for part, (policy, schedule) in _PARTS.items():
        result.scenarios.append(_run_one(part, policy, schedule, seed))
        result.scenarios.append(_run_one(part, "dynamic", schedule, seed))
    return result


def render_theorem1(result: Theorem1Result) -> str:
    rows = [
        [
            s.part,
            s.coordinator_policy,
            s.atomicity_violations,
            s.safe_state_violations,
            ", ".join(f"{k}={v}" for k, v in sorted(s.outcomes.items())),
        ]
        for s in result.scenarios
    ]
    table = render_table(
        [
            "proof part",
            "coordinator",
            "atomicity viol.",
            "safe-state viol.",
            "enforced outcomes",
        ],
        rows,
        title="T1 — Theorem 1: U2PC breaks atomicity; PrAny does not",
    )
    verdict = "DEMONSTRATED" if result.theorem_demonstrated else "NOT demonstrated"
    return f"{table}\n\nTheorem 1 {verdict}"
