"""Experiment R1 — the §4.2 coordinator recovery procedure at work.

We crash the coordinator at characteristic points of commit processing,
let participants block/inquire, then recover the coordinator and
measure the recovery work: which transactions were re-initiated from
log analysis, how many inquiries were answered (and how many by
presumption), and whether the system converged to a fully-forgotten,
consistent state.

One scenario per §4.2 log-shape case:

* decision record without initiation (PrN/PrA path),
* initiation record only → re-initiated abort (PrC/PrAny path),
* initiation + commit without end → commit re-sent to PrN+PrA
  participants only (PrAny path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.report import render_table
from repro.mdbs.recovery import measure_recovery
from repro.mdbs.system import MDBS
from repro.mdbs.transaction import GlobalTransaction, WriteOp
from repro.sim.tracing import TraceEvent
from repro.workloads.generator import COORDINATOR_ID, build_mdbs
from repro.workloads.mixes import MIXES


@dataclass
class RecoveryScenario:
    """One coordinator-crash scenario."""

    name: str
    mix: str
    coordinator: str
    outcome: str
    crash_predicate: Callable[[TraceEvent], bool]
    expected_log_shape: str


@dataclass
class RecoveryOutcome:
    scenario: str
    log_shape: str
    reinitiated: int
    inquiries: int
    presumed_responses: int
    messages: int
    converged: bool


@dataclass
class RecoveryExperimentResult:
    outcomes: list[RecoveryOutcome] = field(default_factory=list)

    @property
    def all_converged(self) -> bool:
        return bool(self.outcomes) and all(o.converged for o in self.outcomes)


def _crash_after_decide(event: TraceEvent) -> bool:
    return event.matches("protocol", "decide", site=COORDINATOR_ID)


def _crash_after_initiation(event: TraceEvent) -> bool:
    return event.matches(
        "log", "append", site=COORDINATOR_ID, type="initiation"
    )


SCENARIOS: list[RecoveryScenario] = [
    RecoveryScenario(
        name="PrN: commit decided, crash before acks",
        mix="all-PrN",
        coordinator="PrN",
        outcome="commit",
        crash_predicate=_crash_after_decide,
        expected_log_shape="commit",
    ),
    RecoveryScenario(
        name="PrA: commit decided, crash before acks",
        mix="all-PrA",
        coordinator="PrA",
        outcome="commit",
        crash_predicate=_crash_after_decide,
        expected_log_shape="commit",
    ),
    RecoveryScenario(
        name="PrC: crash right after initiation (abort presumed)",
        mix="all-PrC",
        coordinator="PrC",
        outcome="commit",  # never reached; crash precedes the decision
        crash_predicate=_crash_after_initiation,
        expected_log_shape="init",
    ),
    RecoveryScenario(
        name="PrAny: crash right after initiation (abort re-sent)",
        mix="PrA+PrC",
        coordinator="dynamic",
        outcome="commit",
        crash_predicate=_crash_after_initiation,
        expected_log_shape="init+protocols",
    ),
    RecoveryScenario(
        name="PrAny: commit decided, crash before acks",
        mix="PrA+PrC",
        coordinator="dynamic",
        outcome="commit",
        crash_predicate=_crash_after_decide,
        expected_log_shape="init+protocols+commit",
    ),
]


def _run_scenario(scenario: RecoveryScenario, seed: int) -> RecoveryOutcome:
    mix = MIXES[scenario.mix]
    mdbs = build_mdbs(mix, coordinator=scenario.coordinator, seed=seed)
    participants = sorted(mix.site_protocols())
    txn = GlobalTransaction(
        txn_id="t-rec",
        coordinator=COORDINATOR_ID,
        writes={site: [WriteOp(f"k@{site}", 1)] for site in participants},
        coordinator_abort=scenario.outcome == "abort",
    )
    mdbs.failures.crash_when(
        COORDINATOR_ID, scenario.crash_predicate, down_for=None
    )
    mdbs.submit(txn)
    mdbs.run(until=120)

    # Capture the coordinator's log shape as recovery will see it.
    from repro.protocols.recovery import summarize_coordinator_log

    summaries = summarize_coordinator_log(mdbs.site(COORDINATOR_ID).log)
    log_shape = summaries[0].shape if summaries else "none"

    costs = measure_recovery(mdbs, run_until=600)
    mdbs.finalize()
    reports = mdbs.check()
    return RecoveryOutcome(
        scenario=scenario.name,
        log_shape=log_shape,
        reinitiated=costs.reinitiated_decisions,
        inquiries=costs.inquiries,
        presumed_responses=costs.presumed_responses,
        messages=costs.messages_sent,
        converged=reports.all_hold,
    )


def recovery_experiment(seed: int = 13) -> RecoveryExperimentResult:
    """Run every §4.2 recovery scenario."""
    result = RecoveryExperimentResult()
    for scenario in SCENARIOS:
        result.outcomes.append(_run_scenario(scenario, seed))
    return result


def render_recovery(result: RecoveryExperimentResult) -> str:
    rows = [
        [
            o.scenario,
            o.log_shape,
            o.reinitiated,
            o.inquiries,
            o.presumed_responses,
            o.messages,
            "yes" if o.converged else "NO",
        ]
        for o in result.outcomes
    ]
    return render_table(
        [
            "scenario",
            "log shape at restart",
            "re-initiated",
            "inquiries",
            "presumed replies",
            "messages",
            "converged",
        ],
        rows,
        title="R1 — §4.2 coordinator recovery",
    )
