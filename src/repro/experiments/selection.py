"""Experiment C3 — ablation of §4.1's dynamic protocol selection.

A PrAny coordinator consults its APP table and uses the participants'
own protocol when they are homogeneous, reserving PrAny for mixes. The
alternative — always using PrAny — is simpler but pays an initiation
force (vs PrN/PrA) and collects acks a specialized protocol would skip.

We run the same homogeneous workload under both selectors and compare
coordinator forces, acks and total messages. Expected shape: dynamic
selection strictly dominates on homogeneous PrN/PrA workloads (no
initiation record) and on PrC commit workloads it ties (PrAny = PrC +
protocols in the initiation record); on mixed workloads both selectors
coincide by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import message_counts
from repro.analysis.report import render_table
from repro.mdbs.transaction import simple_transaction
from repro.workloads.generator import COORDINATOR_ID, build_mdbs
from repro.workloads.mixes import MIXES


@dataclass
class SelectionPoint:
    mix: str
    selector: str
    coordinator_forces: int
    acks: int
    messages: int
    protocols_used: dict[str, int] = field(default_factory=dict)


@dataclass
class SelectionResult:
    points: list[SelectionPoint] = field(default_factory=list)

    def point(self, mix: str, selector: str) -> SelectionPoint:
        for p in self.points:
            if p.mix == mix and p.selector == selector:
                return p
        raise KeyError((mix, selector))

    def savings(self, mix: str) -> tuple[int, int]:
        """(forces saved, acks saved) by dynamic over always-PrAny."""
        dynamic = self.point(mix, "dynamic")
        fixed = self.point(mix, "PrAny")
        return (
            fixed.coordinator_forces - dynamic.coordinator_forces,
            fixed.acks - dynamic.acks,
        )


def _run(mix_name: str, selector: str, n_transactions: int, seed: int) -> SelectionPoint:
    mix = MIXES[mix_name]
    mdbs = build_mdbs(mix, coordinator=selector, seed=seed)
    sites = sorted(mix.site_protocols())
    for i in range(n_transactions):
        mdbs.submit(
            simple_transaction(
                f"t{i:03d}",
                COORDINATOR_ID,
                sites,
                submit_at=i * 30.0,
                abort=(i % 4 == 3),
            )
        )
    mdbs.run(until=n_transactions * 30.0 + 200.0)
    used: dict[str, int] = {}
    for event in mdbs.sim.trace.select(category="protocol", name="select"):
        protocol = event.details.get("protocol", "?")
        used[protocol] = used.get(protocol, 0) + 1
    counts = message_counts(mdbs.sim.trace)
    return SelectionPoint(
        mix=mix_name,
        selector=selector,
        coordinator_forces=mdbs.site(COORDINATOR_ID).log.force_count,
        acks=counts.of("ACK"),
        messages=counts.total,
        protocols_used=used,
    )


def selection_ablation(
    mixes: tuple[str, ...] = ("all-PrN", "all-PrA", "all-PrC", "PrA+PrC", "PrN+PrC"),
    n_transactions: int = 12,
    seed: int = 17,
) -> SelectionResult:
    """Dynamic selection vs always-PrAny over each mix."""
    result = SelectionResult()
    for mix_name in mixes:
        for selector in ("dynamic", "PrAny"):
            result.points.append(_run(mix_name, selector, n_transactions, seed))
    return result


def render_selection(result: SelectionResult) -> str:
    rows = [
        [
            p.mix,
            p.selector,
            ", ".join(f"{k}:{v}" for k, v in sorted(p.protocols_used.items())),
            p.coordinator_forces,
            p.acks,
            p.messages,
        ]
        for p in result.points
    ]
    return render_table(
        ["mix", "selector", "protocols used", "coord forces", "acks", "messages"],
        rows,
        title="C3 — §4.1 dynamic selection vs always-PrAny",
    )
