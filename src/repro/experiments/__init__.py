"""Experiment harnesses — one module per reproduced figure/theorem/table.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
recorded results. Every experiment is callable as a plain function and
is also wrapped by a benchmark in ``benchmarks/``.
"""

from repro.experiments.ablation import render_ablation, run_ablation
from repro.experiments.coordinator_log import render_cl, run_cl_experiment
from repro.experiments.costs import cost_table, run_cost_experiment
from repro.experiments.flows import (
    FIGURES,
    FlowCase,
    FlowResult,
    flow_lanes,
    render_flow,
    reproduce_figure,
)
from repro.experiments.iyv import render_iyv, run_iyv_experiment
from repro.experiments.latency import latency_sweep, render_latency
from repro.experiments.read_only import render_read_only, run_read_only_experiment
from repro.experiments.recovery import recovery_experiment, render_recovery
from repro.experiments.selection import render_selection, selection_ablation
from repro.experiments.throughput import (
    measure_throughput,
    render_throughput,
    run_throughput_experiment,
)
from repro.experiments.theorem1 import (
    Theorem1Result,
    render_theorem1,
    run_theorem1,
)
from repro.experiments.theorem2 import (
    Theorem2Result,
    render_theorem2,
    run_theorem2,
)
from repro.experiments.theorem3 import (
    Theorem3Result,
    render_theorem3,
    run_theorem3,
)

__all__ = [
    "FIGURES",
    "FlowCase",
    "FlowResult",
    "Theorem1Result",
    "Theorem2Result",
    "Theorem3Result",
    "cost_table",
    "render_cl",
    "run_cl_experiment",
    "render_ablation",
    "run_ablation",
    "measure_throughput",
    "render_throughput",
    "run_throughput_experiment",
    "flow_lanes",
    "latency_sweep",
    "render_iyv",
    "render_read_only",
    "run_iyv_experiment",
    "run_read_only_experiment",
    "recovery_experiment",
    "render_flow",
    "render_latency",
    "render_recovery",
    "render_selection",
    "render_theorem1",
    "render_theorem2",
    "render_theorem3",
    "reproduce_figure",
    "run_cost_experiment",
    "run_theorem1",
    "run_theorem2",
    "run_theorem3",
    "selection_ablation",
]
