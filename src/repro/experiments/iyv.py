"""Experiment C5 — Implicit Yes-Vote vs Presumed Abort.

The paper's conclusion points at IYV (its ref [3]) as the next protocol
the operational-correctness criterion should integrate; we implemented
that integration and here measure the trade-off IYV was designed
around: on a fast network, eliminating the voting phase saves two
message rounds per participant, at the price of a forced log write per
update (plus an up-front prepared force).

Expected shape: IYV commits decide strictly earlier (no voting round)
and use fewer messages; PrA uses strictly fewer forced writes as the
per-transaction update count grows. The crossover is the paper-cited
gigabit-network argument: cheap messages, expensive forces favour PrA;
expensive round trips favour IYV.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import message_counts
from repro.analysis.report import render_table
from repro.core.events import EventKind
from repro.mdbs.system import MDBS
from repro.mdbs.transaction import GlobalTransaction, WriteOp


@dataclass
class IYVPoint:
    protocol: str
    updates_per_participant: int
    decision_time: float
    messages: int
    forces_total: int
    correct: bool


@dataclass
class IYVResult:
    points: list[IYVPoint] = field(default_factory=list)

    def point(self, protocol: str, updates: int) -> IYVPoint:
        for p in self.points:
            if p.protocol == protocol and p.updates_per_participant == updates:
                return p
        raise KeyError((protocol, updates))

    @property
    def iyv_always_decides_earlier(self) -> bool:
        updates = {p.updates_per_participant for p in self.points}
        return all(
            self.point("IYV", u).decision_time < self.point("PrA", u).decision_time
            for u in updates
        )

    @property
    def iyv_always_uses_fewer_messages(self) -> bool:
        updates = {p.updates_per_participant for p in self.points}
        return all(
            self.point("IYV", u).messages < self.point("PrA", u).messages
            for u in updates
        )

    @property
    def pra_forces_grow_slower(self) -> bool:
        """PrA's force count is flat in updates; IYV's grows linearly."""
        updates = sorted({p.updates_per_participant for p in self.points})
        if len(updates) < 2:
            return False
        lo, hi = updates[0], updates[-1]
        pra_growth = self.point("PrA", hi).forces_total - self.point(
            "PrA", lo
        ).forces_total
        iyv_growth = self.point("IYV", hi).forces_total - self.point(
            "IYV", lo
        ).forces_total
        return pra_growth == 0 and iyv_growth > 0

    @property
    def all_correct(self) -> bool:
        return all(p.correct for p in self.points)


def _measure(protocol: str, updates: int, n_participants: int, seed: int) -> IYVPoint:
    mdbs = MDBS(seed=seed)
    participants = [f"p{i}" for i in range(n_participants)]
    for site_id in participants:
        mdbs.add_site(site_id, protocol=protocol)
    mdbs.add_site("tm", protocol="PrN", coordinator="dynamic")
    mdbs.submit(
        GlobalTransaction(
            txn_id="t1",
            coordinator="tm",
            writes={
                site: [WriteOp(f"k{j}@{site}", j) for j in range(updates)]
                for site in participants
            },
        )
    )
    mdbs.run(until=400)
    mdbs.finalize()
    reports = mdbs.check()
    history = mdbs.history()
    decides = history.of_kind(EventKind.DECIDE, "t1")
    return IYVPoint(
        protocol=protocol,
        updates_per_participant=updates,
        decision_time=decides[-1].time if decides else float("nan"),
        messages=message_counts(mdbs.sim.trace, txn_id="t1").total,
        forces_total=sum(site.log.force_count for site in mdbs.sites.values()),
        correct=reports.all_hold,
    )


def run_iyv_experiment(
    update_counts: tuple[int, ...] = (1, 2, 4, 8),
    n_participants: int = 3,
    seed: int = 41,
) -> IYVResult:
    """Sweep updates-per-participant for all-IYV vs all-PrA."""
    result = IYVResult()
    for protocol in ("PrA", "IYV"):
        for updates in update_counts:
            result.points.append(_measure(protocol, updates, n_participants, seed))
    return result


def render_iyv(result: IYVResult) -> str:
    rows = [
        [
            p.protocol,
            p.updates_per_participant,
            f"{p.decision_time:.2f}",
            p.messages,
            p.forces_total,
            "yes" if p.correct else "NO",
        ]
        for p in result.points
    ]
    table = render_table(
        [
            "protocol",
            "updates/participant",
            "decision time",
            "messages",
            "total forces",
            "correct",
        ],
        rows,
        title="C5 — IYV vs PrA: round trips traded for forced writes",
    )
    notes = [
        f"IYV decides earlier everywhere: {result.iyv_always_decides_earlier}",
        f"IYV uses fewer messages everywhere: {result.iyv_always_uses_fewer_messages}",
        f"PrA forces flat while IYV's grow: {result.pra_forces_grow_slower}",
    ]
    return table + "\n" + "\n".join(notes)
