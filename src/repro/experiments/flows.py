"""Experiments F1a–F4b: regenerate the paper's protocol-flow figures.

Each figure shows, per site, the ordered sequence of log writes and
messages during one transaction's commit processing. We run the exact
configuration under the simulator, extract a per-site *lane* of flow
tokens from the trace, and compare it with the sequence the figure
shows.

Token vocabulary (per site, in trace order):

* ``force(<record>)`` — a force-written log record,
* ``write(<record>)`` — a non-forced log record,
* ``send(KIND)->site`` / ``recv(KIND)<-site`` — protocol messages,
* ``decide(outcome)`` — the coordinator fixes the outcome,
* ``forget`` — the protocol-table entry is deleted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ExperimentError
from repro.mdbs.system import MDBS
from repro.mdbs.transaction import GlobalTransaction, WriteOp
from repro.sim.tracing import TraceRecorder
from repro.workloads.generator import COORDINATOR_ID, build_mdbs
from repro.workloads.mixes import MIXES, ProtocolMix


@dataclass(frozen=True)
class FlowCase:
    """Configuration reproducing one figure."""

    figure: str
    description: str
    coordinator: str
    mix: ProtocolMix
    outcome: str  # "commit" or "abort"


#: The paper's flow figures.
FIGURES: dict[str, FlowCase] = {
    "F1a": FlowCase(
        "Figure 1(a)",
        "PrAny commit: PrA and PrC participants under a PrAny coordinator",
        "PrAny",
        MIXES["PrA+PrC"],
        "commit",
    ),
    "F1b": FlowCase(
        "Figure 1(b)",
        "PrAny abort: PrA and PrC participants under a PrAny coordinator",
        "PrAny",
        MIXES["PrA+PrC"],
        "abort",
    ),
    "F2-commit": FlowCase(
        "Figure 2",
        "Basic 2PC (PrN), commit case",
        "PrN",
        MIXES["all-PrN"],
        "commit",
    ),
    "F2-abort": FlowCase(
        "Figure 2",
        "Basic 2PC (PrN), abort case",
        "PrN",
        MIXES["all-PrN"],
        "abort",
    ),
    "F3-commit": FlowCase(
        "Figure 3",
        "Presumed abort (PrA), commit case",
        "PrA",
        MIXES["all-PrA"],
        "commit",
    ),
    "F3-abort": FlowCase(
        "Figure 3",
        "Presumed abort (PrA), abort case",
        "PrA",
        MIXES["all-PrA"],
        "abort",
    ),
    "F4a": FlowCase(
        "Figure 4(a)",
        "Presumed commit (PrC), commit case",
        "PrC",
        MIXES["all-PrC"],
        "commit",
    ),
    "F4b": FlowCase(
        "Figure 4(b)",
        "Presumed commit (PrC), abort case",
        "PrC",
        MIXES["all-PrC"],
        "abort",
    ),
}


@dataclass
class FlowResult:
    """Outcome of reproducing one figure."""

    case: FlowCase
    txn_id: str
    lanes: dict[str, list[str]] = field(default_factory=dict)
    reports_hold: bool = False

    def lane(self, site: str) -> list[str]:
        return self.lanes.get(site, [])


def flow_lanes(trace: TraceRecorder, txn_id: str) -> dict[str, list[str]]:
    """Extract per-site flow-token lanes for one transaction."""
    lanes: dict[str, list[tuple[int, str]]] = {}
    # Appends are provisional until we know whether a force flushed them.
    buffered: dict[str, list[tuple[int, str]]] = {}
    tokens_by_append: dict[tuple[str, int], str] = {}

    def add(site: str, seq: int, token: str) -> None:
        lanes.setdefault(site, []).append((seq, token))

    for event in trace:
        site = event.site
        if event.category == "log":
            if event.name == "append":
                buffered.setdefault(site, []).append(
                    (event.seq, event.details.get("type", ""))
                )
                if event.details.get("txn") == txn_id:
                    # Provisional non-forced token; may be upgraded below.
                    tokens_by_append[(site, event.seq)] = "write"
                    add(site, event.seq, f"@{event.seq}")  # placeholder
            elif event.name in ("force",):
                for seq, __ in buffered.get(site, []):
                    if (site, seq) in tokens_by_append:
                        tokens_by_append[(site, seq)] = "force"
                buffered[site] = []
            elif event.name == "crash":
                buffered[site] = []
        elif event.details.get("txn") != txn_id:
            continue
        elif event.category == "msg":
            if event.name == "send":
                kind = event.details.get("kind", "?")
                add(site, event.seq, f"send({kind})->{event.details.get('to', '?')}")
            elif event.name == "deliver":
                kind = event.details.get("kind", "?")
                add(
                    site,
                    event.seq,
                    f"recv({kind})<-{event.details.get('sender', '?')}",
                )
        elif event.category == "protocol":
            if event.name == "decide":
                add(site, event.seq, f"decide({event.details.get('decision')})")
            elif event.name == "forget":
                add(site, event.seq, "forget")

    # Resolve the append placeholders now that forcing is known.
    resolved: dict[str, list[str]] = {}
    record_types = {
        (e.site, e.seq): e.details.get("type", "")
        for e in trace
        if e.category == "log" and e.name == "append"
    }
    for site, entries in lanes.items():
        lane: list[str] = []
        for seq, token in sorted(entries):
            if token.startswith("@"):
                mode = tokens_by_append.get((site, seq), "write")
                lane.append(f"{mode}({record_types[(site, seq)]})")
            else:
                lane.append(token)
        resolved[site] = lane
    return resolved


def run_flow(case: FlowCase, seed: int = 0) -> tuple[MDBS, str]:
    """Run one figure's configuration to quiescence."""
    mdbs = build_mdbs(case.mix, coordinator=case.coordinator, seed=seed)
    participants = sorted(case.mix.site_protocols())
    txn = GlobalTransaction(
        txn_id="t-flow",
        coordinator=COORDINATOR_ID,
        writes={site: [WriteOp(f"k@{site}", 1)] for site in participants},
        coordinator_abort=case.outcome == "abort",
    )
    mdbs.submit(txn)
    mdbs.run(until=500)
    mdbs.finalize()
    return mdbs, txn.txn_id


def reproduce_figure(figure_id: str, seed: int = 0) -> FlowResult:
    """Reproduce one figure and return its lanes.

    Raises:
        ExperimentError: for an unknown figure id.
    """
    case = FIGURES.get(figure_id)
    if case is None:
        raise ExperimentError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        )
    mdbs, txn_id = run_flow(case, seed)
    reports = mdbs.check()
    return FlowResult(
        case=case,
        txn_id=txn_id,
        lanes=flow_lanes(mdbs.sim.trace, txn_id),
        reports_hold=reports.all_hold,
    )


def render_flow(result: FlowResult) -> str:
    """Human-readable rendering of one reproduced figure."""
    lines = [
        f"{result.case.figure}: {result.case.description}",
        f"(outcome: {result.case.outcome}; txn {result.txn_id}; "
        f"correctness holds: {result.reports_hold})",
        "",
    ]
    for site in sorted(result.lanes):
        lines.append(f"[{site}]")
        for token in result.lanes[site]:
            lines.append(f"    {token}")
        lines.append("")
    return "\n".join(lines)


# -- expected lanes (what the figures show) ----------------------------------
#
# Keys are (figure_id, role); the role is "coordinator", or a participant
# protocol name. Tokens listed here are the *protocol-relevant*
# subsequence: UPDATE-record writes and duplicate deliveries are ignored
# by the comparison helper below.

EXPECTED_LANES: dict[tuple[str, str], list[str]] = {
    # Figure 1(a): PrAny commit.
    ("F1a", "coordinator"): [
        "force(initiation)",
        "send(PREPARE)",
        "send(PREPARE)",
        "recv(VOTE_YES)",
        "recv(VOTE_YES)",
        "decide(commit)",
        "force(commit)",
        "send(COMMIT)",
        "send(COMMIT)",
        "recv(ACK)",  # from the PrA participant only
        "write(end)",
        "forget",
    ],
    ("F1a", "PrA"): [
        "recv(PREPARE)",
        "force(prepared)",
        "send(VOTE_YES)",
        "recv(COMMIT)",
        "force(commit)",
        "send(ACK)",
        "forget",
    ],
    ("F1a", "PrC"): [
        "recv(PREPARE)",
        "force(prepared)",
        "send(VOTE_YES)",
        "recv(COMMIT)",
        "write(commit)",
        "forget",
    ],
    # Figure 1(b): PrAny abort.
    ("F1b", "coordinator"): [
        "force(initiation)",
        "send(PREPARE)",
        "send(PREPARE)",
        "recv(VOTE_YES)",
        "recv(VOTE_YES)",
        "decide(abort)",
        "send(ABORT)",
        "send(ABORT)",
        "recv(ACK)",  # from the PrC participant only
        "write(end)",
        "forget",
    ],
    ("F1b", "PrA"): [
        "recv(PREPARE)",
        "force(prepared)",
        "send(VOTE_YES)",
        "recv(ABORT)",
        "write(abort)",
        "forget",
    ],
    ("F1b", "PrC"): [
        "recv(PREPARE)",
        "force(prepared)",
        "send(VOTE_YES)",
        "recv(ABORT)",
        "force(abort)",
        "send(ACK)",
        "forget",
    ],
    # Figure 2: basic 2PC — uniform treatment of both outcomes.
    ("F2-commit", "coordinator"): [
        "send(PREPARE)",
        "send(PREPARE)",
        "recv(VOTE_YES)",
        "recv(VOTE_YES)",
        "decide(commit)",
        "force(commit)",
        "send(COMMIT)",
        "send(COMMIT)",
        "recv(ACK)",
        "recv(ACK)",
        "write(end)",
        "forget",
    ],
    ("F2-commit", "PrN"): [
        "recv(PREPARE)",
        "force(prepared)",
        "send(VOTE_YES)",
        "recv(COMMIT)",
        "force(commit)",
        "send(ACK)",
        "forget",
    ],
    ("F2-abort", "coordinator"): [
        "send(PREPARE)",
        "send(PREPARE)",
        "recv(VOTE_YES)",
        "recv(VOTE_YES)",
        "decide(abort)",
        "force(abort)",
        "send(ABORT)",
        "send(ABORT)",
        "recv(ACK)",
        "recv(ACK)",
        "write(end)",
        "forget",
    ],
    ("F2-abort", "PrN"): [
        "recv(PREPARE)",
        "force(prepared)",
        "send(VOTE_YES)",
        "recv(ABORT)",
        "force(abort)",
        "send(ACK)",
        "forget",
    ],
    # Figure 3: presumed abort.
    ("F3-commit", "coordinator"): [
        "send(PREPARE)",
        "send(PREPARE)",
        "recv(VOTE_YES)",
        "recv(VOTE_YES)",
        "decide(commit)",
        "force(commit)",
        "send(COMMIT)",
        "send(COMMIT)",
        "recv(ACK)",
        "recv(ACK)",
        "write(end)",
        "forget",
    ],
    ("F3-commit", "PrA"): [
        "recv(PREPARE)",
        "force(prepared)",
        "send(VOTE_YES)",
        "recv(COMMIT)",
        "force(commit)",
        "send(ACK)",
        "forget",
    ],
    ("F3-abort", "coordinator"): [
        "send(PREPARE)",
        "send(PREPARE)",
        "recv(VOTE_YES)",
        "recv(VOTE_YES)",
        "decide(abort)",
        "send(ABORT)",
        "send(ABORT)",
        "forget",  # immediately: no record, no acks awaited
    ],
    ("F3-abort", "PrA"): [
        "recv(PREPARE)",
        "force(prepared)",
        "send(VOTE_YES)",
        "recv(ABORT)",
        "write(abort)",
        "forget",
    ],
    # Figure 4: presumed commit.
    ("F4a", "coordinator"): [
        "force(initiation)",
        "send(PREPARE)",
        "send(PREPARE)",
        "recv(VOTE_YES)",
        "recv(VOTE_YES)",
        "decide(commit)",
        "force(commit)",
        "send(COMMIT)",
        "send(COMMIT)",
        "forget",  # immediately: no acks awaited, no end record
    ],
    ("F4a", "PrC"): [
        "recv(PREPARE)",
        "force(prepared)",
        "send(VOTE_YES)",
        "recv(COMMIT)",
        "write(commit)",
        "forget",
    ],
    ("F4b", "coordinator"): [
        "force(initiation)",
        "send(PREPARE)",
        "send(PREPARE)",
        "recv(VOTE_YES)",
        "recv(VOTE_YES)",
        "decide(abort)",
        "send(ABORT)",
        "send(ABORT)",
        "recv(ACK)",
        "recv(ACK)",
        "write(end)",
        "forget",
    ],
    ("F4b", "PrC"): [
        "recv(PREPARE)",
        "force(prepared)",
        "send(VOTE_YES)",
        "recv(ABORT)",
        "force(abort)",
        "send(ACK)",
        "forget",
    ],
}


def normalize_lane(tokens: list[str]) -> list[str]:
    """Strip addressing and data-plane noise for figure comparison.

    * ``send(X)->s`` / ``recv(X)<-s`` lose their peer suffix;
    * UPDATE-record writes (data plane, protocol-independent) drop out.
    """
    normalized = []
    for token in tokens:
        if token.startswith(("send(", "recv(")):
            normalized.append(token.split(")", 1)[0] + ")")
        elif token in ("write(update)", "force(update)"):
            continue
        else:
            normalized.append(token)
    return normalized


def matches_figure(result: FlowResult) -> dict[str, bool]:
    """Compare a reproduced flow against the figure's expected lanes.

    Returns:
        role → whether the observed lane equals the expectation. The
        coordinator role is matched by site id; participant roles by
        their protocol (all participants of that protocol must match).
    """
    figure_id = _figure_key(result)
    outcome: dict[str, bool] = {}
    for (fig, role), expected in EXPECTED_LANES.items():
        if fig != figure_id:
            continue
        if role == "coordinator":
            observed = normalize_lane(result.lane(COORDINATOR_ID))
            outcome[role] = observed == expected
        else:
            site_ids = [
                site
                for site, protocol in result.case.mix.site_protocols().items()
                if protocol == role
            ]
            outcome[role] = all(
                normalize_lane(result.lane(site)) == expected for site in site_ids
            )
    return outcome


def _figure_key(result: FlowResult) -> str:
    for figure_id, case in FIGURES.items():
        if case is result.case:
            return figure_id
    raise ExperimentError("result does not correspond to a known figure")
