"""Experiment C6 — streaming throughput and protocol-table residency.

A commit protocol's practical footprint under load is how long
transactions occupy the coordinator's protocol table (and the log) —
the quantity the paper's operational-correctness criterion is about.
We stream hundreds of transactions through each configuration and
measure:

* virtual-time makespan and mean coordinator residency per transaction,
* the peak protocol-table size at the coordinator,
* messages per transaction,
* wall-clock simulation throughput (events/second — the substrate's own
  performance, reported by the benchmark harness).

Expected shape: ack-free decision paths (PrC commits, PrA aborts) give
the lowest residency and peak table size; PrN the highest; PrAny
between, tracking its mixed membership.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import message_counts
from repro.analysis.report import render_table
from repro.core.events import EventKind
from repro.workloads.generator import (
    COORDINATOR_ID,
    WorkloadSpec,
    build_mdbs,
    generate_transactions,
)
from repro.workloads.mixes import MIXES


@dataclass
class ThroughputPoint:
    config: str
    coordinator: str
    n_transactions: int
    abort_fraction: float
    makespan: float
    mean_residency: float
    peak_table: int
    messages_per_txn: float
    events_simulated: int
    correct: bool


@dataclass
class ThroughputResult:
    points: list[ThroughputPoint] = field(default_factory=list)

    def point(self, config: str) -> ThroughputPoint:
        for p in self.points:
            if p.config == config:
                return p
        raise KeyError(config)

    @property
    def all_correct(self) -> bool:
        return all(p.correct for p in self.points)

    @property
    def prc_residency_lowest_on_commits(self) -> bool:
        """All-commit workloads: PrC's ack-free path wins residency."""
        try:
            prc = self.point("all-PrC")
            prn = self.point("all-PrN")
        except KeyError:
            return False
        return prc.mean_residency < prn.mean_residency


def _residencies(mdbs, txn_ids) -> list[float]:
    history = mdbs.history()
    spans = []
    for txn_id in txn_ids:
        selects = mdbs.sim.trace.select(
            category="protocol", name="select", txn=txn_id
        )
        forgets = history.forget_events(txn_id)
        if selects and forgets:
            spans.append(forgets[-1].time - selects[0].time)
    return spans


def measure_throughput(
    mix_name: str,
    coordinator: str = "dynamic",
    n_transactions: int = 200,
    abort_fraction: float = 0.0,
    seed: int = 29,
) -> ThroughputPoint:
    """Stream a workload through one configuration and measure it."""
    mix = MIXES[mix_name]
    mdbs = build_mdbs(mix, coordinator=coordinator, seed=seed)
    sites = sorted(mix.site_protocols())
    spec = WorkloadSpec(
        n_transactions=n_transactions,
        abort_fraction=abort_fraction,
        participants_min=len(sites),
        participants_max=len(sites),
        inter_arrival=8.0,
        seed=seed,
    )
    transactions = generate_transactions(spec, sites)
    for txn in transactions:
        mdbs.submit(txn)
    horizon = max(t.submit_at for t in transactions) + 300.0
    mdbs.run(until=horizon)
    mdbs.finalize()
    reports = mdbs.check()
    residencies = _residencies(mdbs, [t.txn_id for t in transactions])
    history = mdbs.history()
    decided = [
        t.txn_id
        for t in transactions
        if history.decision(t.txn_id) is not None
    ]
    tm = mdbs.site(COORDINATOR_ID)
    assert tm.coordinator is not None
    counts = message_counts(mdbs.sim.trace)
    last_forget = max(
        (e.time for txn in decided for e in history.forget_events(txn)),
        default=0.0,
    )
    return ThroughputPoint(
        config=mix_name,
        coordinator=coordinator,
        n_transactions=n_transactions,
        abort_fraction=abort_fraction,
        makespan=last_forget,
        mean_residency=sum(residencies) / len(residencies) if residencies else 0.0,
        peak_table=tm.coordinator.table.peak_size,
        messages_per_txn=counts.total / max(1, len(decided)),
        events_simulated=mdbs.sim.steps_executed,
        correct=reports.all_hold,
    )


def run_throughput_experiment(
    n_transactions: int = 200,
    abort_fraction: float = 0.0,
    seed: int = 29,
) -> ThroughputResult:
    """Stream the same-size workload through each configuration."""
    result = ThroughputResult()
    for mix_name, coordinator in (
        ("all-PrN", "PrN"),
        ("all-PrA", "PrA"),
        ("all-PrC", "PrC"),
        ("PrA+PrC", "dynamic"),
        ("PrN+PrA+PrC", "dynamic"),
    ):
        result.points.append(
            measure_throughput(
                mix_name, coordinator, n_transactions, abort_fraction, seed
            )
        )
    return result


def render_throughput(result: ThroughputResult) -> str:
    rows = [
        [
            p.config,
            p.n_transactions,
            f"{p.abort_fraction:.0%}",
            f"{p.makespan:.0f}",
            f"{p.mean_residency:.2f}",
            p.peak_table,
            f"{p.messages_per_txn:.1f}",
            p.events_simulated,
            "yes" if p.correct else "NO",
        ]
        for p in result.points
    ]
    return render_table(
        [
            "configuration",
            "txns",
            "aborts",
            "makespan",
            "mean residency",
            "peak table",
            "msgs/txn",
            "events",
            "correct",
        ],
        rows,
        title="C6 — streaming throughput and coordinator residency",
    )
