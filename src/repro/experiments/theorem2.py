"""Experiment T2 — Theorem 2, empirically.

    "It is impossible to achieve operational correctness if the
    coordinator is using C2PC and distributed transactions execute at
    both PrA and PrC participants."

C2PC never forgets a transaction until *every* participant acks. In the
PrA+PrC mix, committed transactions are never acked by the PrC
participant and aborted ones never by the PrA participant, so *every*
terminated transaction is retained forever: the protocol table and the
un-garbage-collectable log grow linearly with the number of processed
transactions. Under PrAny both return to zero.

The experiment sweeps the transaction count and records the retained
protocol-table entries and uncollected log transactions at the
coordinator after the system has quiesced and every lazy record has
been flushed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import render_series, render_table
from repro.mdbs.system import MDBS
from repro.mdbs.transaction import simple_transaction

_COORD = "tm"


@dataclass
class RetentionPoint:
    """Retention measured after processing ``n_transactions``."""

    coordinator_policy: str
    n_transactions: int
    retained_entries: int
    uncollected_log_txns: int
    atomic: bool
    operationally_correct: bool


@dataclass
class Theorem2Result:
    points: list[RetentionPoint] = field(default_factory=list)

    def series(self, coordinator_policy: str) -> list[tuple[int, int]]:
        return [
            (p.n_transactions, p.retained_entries)
            for p in self.points
            if p.coordinator_policy == coordinator_policy
        ]

    @property
    def c2pc_growth_is_linear(self) -> bool:
        """C2PC retains every terminated mixed transaction."""
        series = [
            p
            for p in self.points
            if p.coordinator_policy.startswith("C2PC")
        ]
        return bool(series) and all(
            p.retained_entries == p.n_transactions for p in series
        )

    @property
    def prany_retains_nothing(self) -> bool:
        series = [p for p in self.points if p.coordinator_policy == "dynamic"]
        return bool(series) and all(p.retained_entries == 0 for p in series)

    @property
    def c2pc_still_atomic(self) -> bool:
        """C2PC is functionally correct — only operationally broken."""
        return all(
            p.atomic
            for p in self.points
            if p.coordinator_policy.startswith("C2PC")
        )

    @property
    def theorem_demonstrated(self) -> bool:
        return (
            self.c2pc_growth_is_linear
            and self.prany_retains_nothing
            and self.c2pc_still_atomic
        )


def _measure(coordinator_policy: str, n_transactions: int, seed: int) -> RetentionPoint:
    mdbs = MDBS(seed=seed)
    mdbs.add_site("alpha_pra", protocol="PrA")
    mdbs.add_site("beta_prc", protocol="PrC")
    mdbs.add_site(_COORD, protocol="PrN", coordinator=coordinator_policy)
    for i in range(n_transactions):
        mdbs.submit(
            simple_transaction(
                f"t{i:03d}",
                _COORD,
                ["alpha_pra", "beta_prc"],
                submit_at=i * 40.0,
                abort=(i % 2 == 1),
            )
        )
    mdbs.run(until=n_transactions * 40.0 + 200.0)
    mdbs.finalize()
    reports = mdbs.check()
    tm = mdbs.site(_COORD)
    assert tm.coordinator is not None
    return RetentionPoint(
        coordinator_policy=coordinator_policy,
        n_transactions=n_transactions,
        retained_entries=len(tm.coordinator.table),
        uncollected_log_txns=len(tm.uncollected_log_transactions()),
        atomic=reports.atomicity.holds,
        operationally_correct=reports.operational.holds,
    )


def run_theorem2(
    counts: tuple[int, ...] = (4, 8, 16, 32),
    c2pc_native: str = "PrN",
    seed: int = 3,
) -> Theorem2Result:
    """Sweep transaction counts under C2PC and PrAny coordinators."""
    result = Theorem2Result()
    for policy in (f"C2PC({c2pc_native})", "dynamic"):
        for n in counts:
            result.points.append(_measure(policy, n, seed))
    return result


def render_theorem2(result: Theorem2Result) -> str:
    rows = [
        [
            p.coordinator_policy,
            p.n_transactions,
            p.retained_entries,
            p.uncollected_log_txns,
            "yes" if p.atomic else "NO",
            "yes" if p.operationally_correct else "NO",
        ]
        for p in result.points
    ]
    table = render_table(
        [
            "coordinator",
            "txns processed",
            "retained entries",
            "uncollected log txns",
            "atomic",
            "operational",
        ],
        rows,
        title="T2 — Theorem 2: C2PC must remember terminated txns forever",
    )
    charts = []
    for policy in sorted({p.coordinator_policy for p in result.points}):
        charts.append(
            render_series(
                f"retained entries vs txns ({policy})",
                result.series(policy),
            )
        )
    verdict = "DEMONSTRATED" if result.theorem_demonstrated else "NOT demonstrated"
    return "\n\n".join([table, *charts, f"Theorem 2 {verdict}"])
