"""Experiment C4 — the read-only optimization.

The paper's conclusion names read-only optimizations (its refs
[15, 1, 4]) as the next target for the operational correctness
criterion. We implement the classic READ-vote optimization — a
participant whose subtransaction wrote nothing votes READ, releases its
locks at the vote, and drops out of the decision phase — and measure
what it saves on workloads with read-only participants:

* forced log writes at read-only participants (no prepared force),
* decision and acknowledgement messages,
* lock-holding time at read-only participants (released at the vote
  instead of after the decision round-trip).

Correctness is unchanged: a read-only subtransaction is consistent
with either outcome, so dropping out never threatens atomicity — the
checkers run on every cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import message_counts
from repro.analysis.report import render_table
from repro.mdbs.transaction import GlobalTransaction, WriteOp
from repro.workloads.generator import COORDINATOR_ID, build_mdbs
from repro.workloads.mixes import MIXES


@dataclass
class ReadOnlyCell:
    """Measured costs for one (mix, optimization on/off) cell."""

    mix: str
    optimized: bool
    read_fraction: float
    total_forces: int
    messages: int
    acks: int
    read_votes: int
    correct: bool


@dataclass
class ReadOnlyResult:
    cells: list[ReadOnlyCell] = field(default_factory=list)

    def cell(self, mix: str, optimized: bool) -> ReadOnlyCell:
        for cell in self.cells:
            if cell.mix == mix and cell.optimized is optimized:
                return cell
        raise KeyError((mix, optimized))

    def savings(self, mix: str) -> tuple[int, int]:
        """(forces saved, messages saved) by the optimization."""
        off = self.cell(mix, False)
        on = self.cell(mix, True)
        return off.total_forces - on.total_forces, off.messages - on.messages

    @property
    def always_correct(self) -> bool:
        return all(cell.correct for cell in self.cells)


def _run(mix_name: str, optimized: bool, n_transactions: int, seed: int) -> ReadOnlyCell:
    mix = MIXES[mix_name]
    mdbs = build_mdbs(
        mix, coordinator="dynamic", seed=seed, read_only_optimization=optimized
    )
    sites = sorted(mix.site_protocols())
    # Every transaction updates its first participant and only reads at
    # the rest — the shape reporting/analytics transactions have.
    for i in range(n_transactions):
        writer, *readers = sites
        mdbs.submit(
            GlobalTransaction(
                txn_id=f"t{i:03d}",
                coordinator=COORDINATOR_ID,
                writes={writer: [WriteOp(f"t{i}@{writer}", i)]},
                reads={reader: [f"catalog@{reader}"] for reader in readers},
                submit_at=i * 30.0,
            )
        )
    mdbs.run(until=n_transactions * 30.0 + 200.0)
    mdbs.finalize()
    reports = mdbs.check()
    counts = message_counts(mdbs.sim.trace)
    return ReadOnlyCell(
        mix=mix_name,
        optimized=optimized,
        read_fraction=(len(sites) - 1) / len(sites),
        total_forces=sum(site.log.force_count for site in mdbs.sites.values()),
        messages=counts.total,
        acks=counts.of("ACK"),
        read_votes=counts.of("VOTE_READ"),
        correct=reports.all_hold,
    )


def run_read_only_experiment(
    mixes: tuple[str, ...] = ("all-PrN", "all-PrA", "all-PrC", "PrN+PrA+PrC"),
    n_transactions: int = 10,
    seed: int = 23,
) -> ReadOnlyResult:
    """Measure each mix with the optimization off and on."""
    result = ReadOnlyResult()
    for mix_name in mixes:
        for optimized in (False, True):
            result.cells.append(_run(mix_name, optimized, n_transactions, seed))
    return result


def render_read_only(result: ReadOnlyResult) -> str:
    rows = [
        [
            cell.mix,
            "on" if cell.optimized else "off",
            f"{cell.read_fraction:.0%}",
            cell.total_forces,
            cell.messages,
            cell.acks,
            cell.read_votes,
            "yes" if cell.correct else "NO",
        ]
        for cell in result.cells
    ]
    return render_table(
        [
            "mix",
            "R/O opt",
            "readers",
            "total forces",
            "messages",
            "acks",
            "READ votes",
            "correct",
        ],
        rows,
        title="C4 — read-only optimization: costs with the READ vote off/on",
    )
