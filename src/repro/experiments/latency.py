"""Experiment C2 — commit latency vs participant count.

The paper's opening motivation: "commit processing consumes a
substantial amount of a transaction's execution time". We measure, per
protocol and participant count:

* **decision latency** — submission to the coordinator's decision;
* **release latency** — submission until every participant enforced the
  decision (locks released everywhere);
* **forget latency** — submission until the coordinator forgot the
  transaction (protocol-table residency).

Expected shape: all grow with N; the ack-free decision paths (PrC
commit, PrA abort) give the shortest forget latency because the
coordinator does not wait for acknowledgements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.report import render_table
from repro.core.events import EventKind
from repro.mdbs.transaction import GlobalTransaction, WriteOp
from repro.net.network import UniformLatency
from repro.workloads.generator import COORDINATOR_ID, build_mdbs
from repro.workloads.mixes import MIXES


@dataclass
class LatencyPoint:
    config: str
    outcome: str
    n_participants: int
    decision_latency: float
    release_latency: float
    forget_latency: float


@dataclass
class LatencyResult:
    points: list[LatencyPoint] = field(default_factory=list)

    def series(
        self, config: str, outcome: str, metric: str = "forget_latency"
    ) -> list[tuple[int, float]]:
        return [
            (p.n_participants, getattr(p, metric))
            for p in self.points
            if p.config == config and p.outcome == outcome
        ]

    def point(
        self, config: str, outcome: str, n_participants: int
    ) -> Optional[LatencyPoint]:
        for p in self.points:
            if (
                p.config == config
                and p.outcome == outcome
                and p.n_participants == n_participants
            ):
                return p
        return None


def _measure(
    mix_name: str, coordinator: str, outcome: str, n_participants: int, seed: int
) -> LatencyPoint:
    mix = MIXES[mix_name].extended_to(n_participants)
    mdbs = build_mdbs(mix, coordinator=coordinator, seed=seed)
    mdbs.network.set_latency(UniformLatency(mdbs.sim, 0.5, 2.0))  # jittered links
    participants = sorted(mix.site_protocols())
    txn = GlobalTransaction(
        txn_id="t-lat",
        coordinator=COORDINATOR_ID,
        writes={site: [WriteOp(f"k@{site}", 1)] for site in participants},
        coordinator_abort=outcome == "abort",
        submit_at=0.0,
    )
    mdbs.submit(txn)
    mdbs.run(until=500)
    history = mdbs.history()
    decides = history.of_kind(EventKind.DECIDE, txn.txn_id)
    enforces = history.of_kind(EventKind.ENFORCE, txn.txn_id)
    forgets = history.forget_events(txn.txn_id)
    return LatencyPoint(
        config=mix_name,
        outcome=outcome,
        n_participants=n_participants,
        decision_latency=decides[-1].time if decides else float("nan"),
        release_latency=max(e.time for e in enforces) if enforces else float("nan"),
        forget_latency=forgets[-1].time if forgets else float("nan"),
    )


#: (mix name, coordinator policy) per swept configuration.
SWEEP_CONFIGS: list[tuple[str, str]] = [
    ("all-PrN", "PrN"),
    ("all-PrA", "PrA"),
    ("all-PrC", "PrC"),
    ("PrA+PrC", "dynamic"),
]


def latency_sweep(
    participant_counts: tuple[int, ...] = (2, 4, 6, 8),
    seed: int = 9,
) -> LatencyResult:
    """Measure latencies across protocols and participant counts."""
    result = LatencyResult()
    for mix_name, coordinator in SWEEP_CONFIGS:
        for outcome in ("commit", "abort"):
            for n in participant_counts:
                result.points.append(
                    _measure(mix_name, coordinator, outcome, n, seed)
                )
    return result


def render_latency(result: LatencyResult) -> str:
    rows = [
        [
            p.config,
            p.outcome,
            p.n_participants,
            f"{p.decision_latency:.2f}",
            f"{p.release_latency:.2f}",
            f"{p.forget_latency:.2f}",
        ]
        for p in result.points
    ]
    return render_table(
        ["configuration", "outcome", "N", "decision", "all released", "coord forgot"],
        rows,
        title="C2 — commit latency vs participant count (virtual time)",
    )
