"""Experiment C1 — the commit-processing cost table.

The paper's whole design space is driven by the classic cost trade-off
between the presumed protocols (its refs [4, 9, 15, 12]): forced log
writes and acknowledgement messages per transaction, split by outcome.
We *measure* the table from simulation rather than transcribing it:
run one transaction per (protocol, outcome) cell and count.

Expected shape (N participants):

* PrC commit is cheapest for participants (no forced decision record,
  no ack); PrA abort is cheapest overall (coordinator writes nothing);
* PrN is never cheaper than both specialized variants;
* PrAny pays PrC's initiation force and collects only the acks its
  mixed membership requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import CostBreakdown, cost_breakdown
from repro.analysis.report import render_table
from repro.mdbs.transaction import GlobalTransaction, WriteOp
from repro.workloads.generator import COORDINATOR_ID, build_mdbs
from repro.workloads.mixes import MIXES, ProtocolMix


@dataclass
class CostCell:
    """Measured costs for one (configuration, outcome) cell."""

    config: str
    outcome: str
    n_participants: int
    breakdown: CostBreakdown

    @property
    def coordinator_forced(self) -> int:
        return self.breakdown.coordinator_forced

    @property
    def participant_forced(self) -> int:
        return self.breakdown.participant_forced

    @property
    def acks(self) -> int:
        return self.breakdown.message_kinds.get("ACK", 0)

    @property
    def messages(self) -> int:
        return self.breakdown.messages


@dataclass
class CostExperiment:
    cells: list[CostCell] = field(default_factory=list)

    def cell(self, config: str, outcome: str) -> CostCell:
        for cell in self.cells:
            if cell.config == config and cell.outcome == outcome:
                return cell
        raise KeyError(f"no cell for ({config!r}, {outcome!r})")

    # -- shape assertions used by tests and EXPERIMENTS.md -------------------

    @property
    def prc_commit_cheaper_for_participants_than_pra(self) -> bool:
        return (
            self.cell("all-PrC", "commit").participant_forced
            < self.cell("all-PrA", "commit").participant_forced
        )

    @property
    def pra_abort_is_free_at_coordinator(self) -> bool:
        return self.cell("all-PrA", "abort").coordinator_forced == 0

    @property
    def prn_never_strictly_cheapest(self) -> bool:
        for outcome in ("commit", "abort"):
            prn = self.cell("all-PrN", outcome)
            pra = self.cell("all-PrA", outcome)
            prc = self.cell("all-PrC", outcome)
            prn_total = prn.coordinator_forced + prn.participant_forced + prn.acks
            others = [
                p.coordinator_forced + p.participant_forced + p.acks
                for p in (pra, prc)
            ]
            if prn_total < min(others):
                return False
        return True


def _measure_cell(
    mix: ProtocolMix, coordinator: str, outcome: str, seed: int
) -> CostCell:
    mdbs = build_mdbs(mix, coordinator=coordinator, seed=seed)
    participants = sorted(mix.site_protocols())
    txn = GlobalTransaction(
        txn_id="t-cost",
        coordinator=COORDINATOR_ID,
        writes={site: [WriteOp(f"k@{site}", 1)] for site in participants},
        coordinator_abort=outcome == "abort",
    )
    mdbs.submit(txn)
    mdbs.run(until=500)
    # No finalize() before measuring: background flushes and GC are not
    # commit-processing costs.
    breakdown = cost_breakdown(mdbs.sim.trace, txn.txn_id, COORDINATOR_ID)
    return CostCell(
        config=mix.name,
        outcome=outcome,
        n_participants=len(participants),
        breakdown=breakdown,
    )


#: (display name, mix, coordinator policy) for each table row group.
CONFIGS: list[tuple[str, str, str]] = [
    ("all-PrN", "all-PrN", "PrN"),
    ("all-PrA", "all-PrA", "PrA"),
    ("all-PrC", "all-PrC", "PrC"),
    ("PrAny (PrA+PrC)", "PrA+PrC", "dynamic"),
    ("PrAny (3-way)", "PrN+PrA+PrC", "dynamic"),
]


def run_cost_experiment(n_participants: int = 2, seed: int = 5) -> CostExperiment:
    """Measure every (configuration, outcome) cell of the cost table."""
    experiment = CostExperiment()
    for display, mix_name, coordinator in CONFIGS:
        mix = MIXES[mix_name].extended_to(n_participants)
        # Keep the canonical display names stable across sizes.
        for outcome in ("commit", "abort"):
            cell = _measure_cell(mix, coordinator, outcome, seed)
            cell.config = display if display.startswith("PrAny") else mix_name
            experiment.cells.append(cell)
    return experiment


def cost_table(experiment: CostExperiment) -> str:
    """Render the C1 table."""
    rows = []
    for cell in experiment.cells:
        rows.append(
            [
                cell.config,
                cell.outcome,
                cell.n_participants,
                cell.coordinator_forced,
                cell.breakdown.coordinator_writes,
                cell.participant_forced,
                cell.breakdown.participant_writes,
                cell.acks,
                cell.messages,
            ]
        )
    return render_table(
        [
            "configuration",
            "outcome",
            "N",
            "coord forces",
            "coord writes",
            "part forces",
            "part writes",
            "acks",
            "messages",
        ],
        rows,
        title="C1 — measured commit-processing costs (protocol records only)",
    )
