"""Leader liveness and the takeover/recovery sweep.

Two pieces:

* :class:`FailoverWatcher` — runs at every acceptor site. The leader
  heartbeats PX_PING; after ``failover_timeout + rank·stagger`` of
  silence the acceptor elects *itself* (deterministic order: sorted
  acceptor ids) and runs a :class:`DecisionCompleter` sweep.
* :class:`DecisionCompleter` — the proposer side of a takeover or a
  leader restart: bulk phase 1 over the acceptor group, then, per
  discovered in-flight transaction, phase 2 with the highest-ballot
  accepted value — or the *presumed* value, abort, when no acceptor
  accepted anything. Abort is safe precisely because the leader only
  sends a decision after a majority accepted it: a phase-1 majority
  with no accepted value proves no participant ever saw a decision.

Once a transaction's value is chosen at quorum, the completer hands it
to the site facade, which forces a local coordinator decision record
and re-enters the unmodified engine's decision phase
(``CoordinatorEngine._reinitiate``) to notify and collect acks.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.replication.config import ReplicationConfig
from repro.replication.messages import PX_1A, PX_2A, ballot_key
from repro.sim.kernel import Simulator


class DecisionCompleter:
    """One quorum sweep completing every discovered in-flight txn."""

    def __init__(
        self,
        sim: Simulator,
        site_id: str,
        config: ReplicationConfig,
        runtime,
        ballot_n: int,
        extra: Optional[dict[str, dict]] = None,
        skip: Optional[Callable[[str], bool]] = None,
        on_txn: Optional[Callable[[str, str, dict], None]] = None,
        on_done: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Args:
        runtime: the owning :class:`SiteReplication` (rid allocation,
            reply routing, quorum calls).
        ballot_n: initial ballot number; must be > 0 (the fast path
            owns ballot 0).
        extra: locally known in-flight transactions to sweep even if
            no acceptor reports them (txn -> {participants, protocols})
            — the leader's initiation-only log entries.
        skip: transactions already complete at this site.
        on_txn: called with (txn_id, value, info) once a value is
            chosen at quorum.
        on_done: called with the number of completed transactions.
        """
        self._sim = sim
        self._site_id = site_id
        self._config = config
        self._runtime = runtime
        self._ballot_n = ballot_n
        self._extra = dict(extra or {})
        self._skip = skip or (lambda txn_id: False)
        self._on_txn = on_txn or (lambda *a: None)
        self._on_done = on_done or (lambda n: None)
        self._calls: list = []
        self._pending: set[str] = set()
        self._completed = 0
        self._finished = False

    def start(self) -> None:
        self._phase1([self._ballot_n, self._site_id])

    def cancel(self) -> None:
        self._finished = True
        self._abandon()

    def _abandon(self) -> None:
        for call in self._calls:
            call.cancel()
        self._calls.clear()
        self._pending.clear()

    def _restart(self, promised: list) -> None:
        if self._finished:
            return
        self._abandon()
        self._ballot_n = max(int(promised[0]) + 1, self._ballot_n + 1)
        self._phase1([self._ballot_n, self._site_id])

    def _phase1(self, ballot: list) -> None:
        # No "txns" scope: every instance the acceptor knows is in
        # play; "extra" adds the proposer's locally known instances
        # even where an acceptor never saw them registered.
        payload: dict[str, Any] = {"ballot": ballot}
        if self._extra:
            payload["extra"] = sorted(self._extra)

        def promised(acks: dict) -> None:
            self._on_promised(ballot, acks)

        def rejected(acceptor: str, info: dict) -> None:
            self._restart(info.get("promised") or ballot)

        self._calls.append(
            self._runtime.call(
                PX_1A, "", payload, promised, rejected, label=f"sweep {ballot[0]}"
            )
        )

    def _on_promised(self, ballot: list, acks: dict) -> None:
        merged: dict[str, dict] = {}
        for payload in acks.values():
            for txn_id, info in (payload.get("txns") or {}).items():
                held = merged.setdefault(
                    txn_id,
                    {
                        "participants": [],
                        "protocols": {},
                        "accepted_ballot": None,
                        "accepted_value": None,
                    },
                )
                if info.get("participants") and not held["participants"]:
                    held["participants"] = list(info["participants"])
                if info.get("protocols") and not held["protocols"]:
                    held["protocols"] = dict(info["protocols"])
                accepted_at = info.get("accepted_ballot")
                if accepted_at is not None and (
                    held["accepted_ballot"] is None
                    or ballot_key(accepted_at) > ballot_key(held["accepted_ballot"])
                ):
                    held["accepted_ballot"] = accepted_at
                    held["accepted_value"] = info.get("accepted_value")
        for txn_id, info in self._extra.items():
            held = merged.setdefault(
                txn_id,
                {
                    "participants": [],
                    "protocols": {},
                    "accepted_ballot": None,
                    "accepted_value": None,
                },
            )
            if info.get("participants") and not held["participants"]:
                held["participants"] = list(info["participants"])
            if info.get("protocols") and not held["protocols"]:
                held["protocols"] = dict(info["protocols"])
        todo = {
            txn_id: info
            for txn_id, info in merged.items()
            if not self._skip(txn_id)
        }
        if not todo:
            self._finish()
            return
        self._pending = set(todo)
        for txn_id in sorted(todo):
            info = todo[txn_id]
            # The heart of the matter: an accepted value must win; a
            # never-accepted transaction gets the quorum's presumption.
            value = info["accepted_value"] or "abort"
            self._phase2(ballot, txn_id, value, info)

    def _phase2(self, ballot: list, txn_id: str, value: str, info: dict) -> None:
        payload = {
            "ballot": ballot,
            "value": value,
            "participants": info["participants"],
            "protocols": info["protocols"],
        }

        def accepted(acks: dict) -> None:
            self._decided(txn_id, value, info)

        def rejected(acceptor: str, rej: dict) -> None:
            self._restart(rej.get("promised") or ballot)

        self._calls.append(
            self._runtime.call(
                PX_2A, txn_id, payload, accepted, rejected, label=f"2a {txn_id}"
            )
        )

    def _decided(self, txn_id: str, value: str, info: dict) -> None:
        if self._finished:
            return
        self._completed += 1
        self._on_txn(txn_id, value, info)
        self._pending.discard(txn_id)
        if not self._pending:
            self._finish()

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self._abandon()
        self._on_done(self._completed)


class FailoverWatcher:
    """Acceptor-side leader-liveness tracking and takeover trigger."""

    def __init__(
        self,
        sim: Simulator,
        site_id: str,
        config: ReplicationConfig,
        runtime,
    ) -> None:
        self._sim = sim
        self._site_id = site_id
        self._config = config
        self._runtime = runtime
        self._deadline = config.failover_timeout + config.rank(
            site_id
        ) * config.failover_stagger
        self._last_seen = sim.now
        self._sweeping = False
        self._timer = None
        self._arm()

    def on_ping(self) -> None:
        self._last_seen = self._sim.now

    def on_proposer_traffic(self) -> None:
        """Another coordinator is visibly working; hold our fire."""
        self._last_seen = self._sim.now

    def crash(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._sweeping = False

    def recover(self) -> None:
        self._last_seen = self._sim.now
        self._arm()

    def _arm(self) -> None:
        self._timer = self._sim.set_timer(
            self._config.heartbeat_interval,
            self._check,
            label=f"failover-watch {self._site_id}",
        )

    def _check(self) -> None:
        silence = self._sim.now - self._last_seen
        if not self._sweeping and silence >= self._deadline:
            self._sweeping = True
            self._sim.record(
                self._site_id,
                "replication",
                "failover",
                leader=self._config.leader,
                silence=round(silence, 3),
            )
            self._runtime.start_takeover(on_done=self._sweep_done)
        self._arm()

    def _sweep_done(self, completed: int) -> None:
        self._sweeping = False
        # Fresh grace period: don't immediately re-elect ourselves.
        self._last_seen = self._sim.now
        self._sim.record(
            self._site_id,
            "replication",
            "failover_done",
            completed=completed,
        )
