"""Policy wrappers: what replication costs the presumption protocols.

Paxos Commit needs every transaction *registered* with the acceptor
quorum before voting starts — a takeover must be able to learn, from
any majority, who participates and under which protocol. The natural
carrier is the initiation record (it is forced before any PREPARE
anyway), so the leader's policies are wrapped to always write one,
protocols included.

That is a real, honest price: the very optimization PrN and PrA are
built around — skipping the initiation force — does not survive
replication, because "the coordinator wrote nothing yet" is
indistinguishable from "the coordinator never existed" at a quorum
that must decide whether to wait or presume. Everything else (decision
forcing, ack matrices, END records, GC covers, presumption answers)
delegates to the wrapped policy unchanged, which is what keeps the
replicated run's observable footprint equal to the plain twin's
modulo exactly the leader-side initiation/END records (see
``tests/conformance/harness.py``).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.events import Outcome
from repro.protocols.base import CoordinatorPolicy
from repro.protocols.registry import PolicySelector


class ReplicatedPolicy(CoordinatorPolicy):
    """A coordinator policy forced to register every transaction."""

    def __init__(self, inner: CoordinatorPolicy) -> None:
        self.inner = inner

    @property
    def name(self) -> str:  # type: ignore[override]
        # Keep the wrapped policy's display name: protocol-selection
        # traces stay comparable between the plain and replicated twins.
        return self.inner.name

    def writes_initiation(self) -> bool:
        return True

    def initiation_includes_protocols(self) -> bool:
        return True

    def forces_decision_record(self, outcome: Outcome) -> bool:
        return self.inner.forces_decision_record(outcome)

    def writes_end(self, outcome: Outcome) -> bool:
        return self.inner.writes_end(outcome)

    def ack_expected(self, participant_protocol: str, outcome: Outcome) -> bool:
        return self.inner.ack_expected(participant_protocol, outcome)

    def gc_cover(self, outcome: Outcome):
        return self.inner.gc_cover(outcome)

    def respond_unknown(self, inquirer_protocol: str) -> Outcome:
        return self.inner.respond_unknown(inquirer_protocol)

    def __repr__(self) -> str:
        return f"ReplicatedPolicy({self.inner!r})"


class ReplicatedSelector:
    """Wrap every policy a selector hands out (leader side only)."""

    def __init__(self, inner: PolicySelector) -> None:
        self.inner = inner
        self._wrapped: dict[int, ReplicatedPolicy] = {}

    @property
    def name(self) -> str:
        return self.inner.name

    def select(self, participant_protocols: Mapping[str, str]) -> ReplicatedPolicy:
        return self._wrap(self.inner.select(participant_protocols))

    def by_name(self, name: str) -> ReplicatedPolicy:
        return self._wrap(self.inner.by_name(name))

    def _wrap(self, policy: CoordinatorPolicy) -> ReplicatedPolicy:
        # Cache by identity: selectors reuse policy instances, and the
        # engine compares entries' policies only by behaviour, but a
        # stable wrapper keeps repr/traces tidy.
        key = id(policy)
        wrapped = self._wrapped.get(key)
        if wrapped is None:
            wrapped = ReplicatedPolicy(policy)
            self._wrapped[key] = wrapped
        return wrapped
