"""One round-trip to a majority of acceptors, with resends.

A :class:`QuorumCall` broadcasts one message kind to every acceptor and
collects replies until a majority of *distinct* acceptors answered
positively (then fires ``on_majority`` exactly once) or any acceptor
nacks (``ok: false`` — then fires ``on_reject`` exactly once and stops).
Unanswered acceptors are re-sent on a timer, so lost messages and
crashed-then-recovered acceptors cannot wedge a round; a crashed
*proposer* abandons its rounds wholesale (the owning facade clears the
call registry and cancels the timers).

Replies are matched to calls by the ``rid`` echoed in every reply
payload; rid allocation and reply routing live in
:class:`~repro.replication.runtime.SiteReplication`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.net.message import Message
from repro.net.network import Network
from repro.replication.config import ReplicationConfig
from repro.sim.kernel import Simulator


class QuorumCall:
    """One majority round over the acceptor group."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        sender: str,
        config: ReplicationConfig,
        calls: dict[int, "QuorumCall"],
        rid: int,
        kind: str,
        txn_id: str,
        payload: dict[str, Any],
        on_majority: Callable[[dict[str, dict]], None],
        on_reject: Optional[Callable[[str, dict], None]] = None,
        label: str = "",
    ) -> None:
        self._sim = sim
        self._network = network
        self._sender = sender
        self._config = config
        self._calls = calls
        self._rid = rid
        self._kind = kind
        self._txn_id = txn_id
        self._payload = payload
        self._on_majority = on_majority
        self._on_reject = on_reject
        self._label = label or kind
        self._acks: dict[str, dict] = {}
        self._timer = None
        self._done = False

    def start(self) -> "QuorumCall":
        self._calls[self._rid] = self
        self._broadcast()
        self._arm()
        return self

    def on_reply(self, message: Message) -> None:
        if self._done:
            return
        payload = message.payload
        if payload.get("ok", True) is False:
            self.cancel()
            if self._on_reject is not None:
                self._on_reject(message.sender, payload)
            return
        self._acks[message.sender] = payload
        if len(self._acks) >= self._config.majority:
            acks = dict(self._acks)
            self.cancel()
            self._on_majority(acks)

    def cancel(self) -> None:
        self._done = True
        self._calls.pop(self._rid, None)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _broadcast(self) -> None:
        for acceptor in self._config.acceptors:
            if acceptor in self._acks:
                continue
            self._network.send(
                Message(
                    self._kind,
                    self._sender,
                    acceptor,
                    self._txn_id,
                    {**self._payload, "rid": self._rid},
                )
            )

    def _arm(self) -> None:
        self._timer = self._sim.set_timer(
            self._config.retry_interval,
            self._retry,
            label=f"px-retry {self._label}",
        )

    def _retry(self) -> None:
        if self._done:
            return
        self._broadcast()
        self._arm()
