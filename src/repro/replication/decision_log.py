"""The seam: a stable-log wrapper that replicates coordinator writes.

The coordinator engine is untouched — it force-appends its initiation
and decision records exactly as before. This wrapper intercepts those
two record classes on the *leader's* log:

* an INITIATION record is forced locally, then *registered* with a
  majority of acceptors before the stability callback fires (so no
  PREPARE leaves before a quorum can tell a takeover who is involved);
* a coordinator decision record is first driven through Paxos phase 2
  at the leader's fast-path ballot ``[0, leader]`` — the decision
  exists once a majority accepted it, which is exactly when the
  engine's decide-at-stability callback (``defers_forces``) fires; the
  local force follows the quorum. A nack (some takeover promised a
  higher ballot) demotes the leader to an ordinary proposer: phase 1,
  adopt any previously accepted value — possibly *flipping* the
  engine's own decision to the quorum's — then phase 2 at the higher
  ballot.

Everything else (prepared records, updates, END, participant-side
decisions) passes straight through to the wrapped log.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.events import Outcome
from repro.net.network import Network
from repro.replication.config import ReplicationConfig
from repro.replication.messages import PX_1A, PX_2A, PX_REGISTER, ballot_key
from repro.sim.kernel import Simulator
from repro.storage.log_records import LogRecord, RecordType
from repro.storage.stable_log import StableLog


class ReplicatedDecisionLog:
    """Log wrapper replicating the leader's coordinator records."""

    def __init__(
        self,
        inner: StableLog,
        sim: Simulator,
        site_id: str,
        network: Network,
        config: ReplicationConfig,
    ) -> None:
        self.inner = inner
        self._sim = sim
        self._site_id = site_id
        self._network = network
        self._config = config
        self._runtime = None  # SiteReplication; bound by the facade
        self._engine = None  # CoordinatorEngine; bound by the facade

    def bind(self, runtime, engine) -> None:
        self._runtime = runtime
        self._engine = engine

    @property
    def defers_forces(self) -> bool:
        """Coordinator decisions are stable at quorum, not at force."""
        return True

    # -- the intercepted write path ------------------------------------------------

    def force_append_async(
        self,
        record: LogRecord,
        on_stable: Optional[Callable[[], None]] = None,
    ) -> LogRecord:
        if record.type is RecordType.INITIATION:
            return self.inner.force_append_async(
                record, lambda: self._register(record, on_stable)
            )
        if record.is_decision and record.get("by") == "coordinator":
            self._propose(record, on_stable)
            return record
        return self.inner.force_append_async(record, on_stable)

    def _register(
        self, record: LogRecord, on_stable: Optional[Callable[[], None]]
    ) -> None:
        txn_id = record.txn_id
        payload = {
            "participants": record.get("participants") or [],
            "protocols": record.get("protocols") or {},
        }

        def registered(acks: dict) -> None:
            self._sim.record(
                self._site_id,
                "replication",
                "registered",
                txn=txn_id,
                acks=len(acks),
            )
            if on_stable is not None:
                on_stable()

        self._runtime.call(
            PX_REGISTER, txn_id, payload, registered, label=f"reg {txn_id}"
        )

    def _propose(
        self, record: LogRecord, on_stable: Optional[Callable[[], None]]
    ) -> None:
        entry = self._engine.table.get(record.txn_id) if self._engine else None
        protocols = dict(entry.protocols) if entry is not None else {}
        self._phase2(
            record,
            on_stable,
            ballot=[0, self._site_id],
            value=record.type.value,
            participants=list(record.get("participants") or []),
            protocols=protocols,
        )

    def _phase2(
        self,
        record: LogRecord,
        on_stable: Optional[Callable[[], None]],
        ballot: list,
        value: str,
        participants: list[str],
        protocols: dict[str, str],
    ) -> None:
        payload: dict[str, Any] = {
            "ballot": ballot,
            "value": value,
            "participants": participants,
            "protocols": protocols,
        }

        def accepted(acks: dict) -> None:
            self._sim.record(
                self._site_id,
                "replication",
                "replicated",
                txn=record.txn_id,
                ballot=ballot[0],
                decision=value,
                acks=len(acks),
            )
            self._adopt(record, value, on_stable)

        def rejected(acceptor: str, info: dict) -> None:
            promised = info.get("promised") or ballot
            self._phase1(
                record,
                on_stable,
                ballot=[int(promised[0]) + 1, self._site_id],
                participants=participants,
                protocols=protocols,
            )

        self._runtime.call(
            PX_2A,
            record.txn_id,
            payload,
            accepted,
            rejected,
            label=f"2a {record.txn_id}",
        )

    def _phase1(
        self,
        record: LogRecord,
        on_stable: Optional[Callable[[], None]],
        ballot: list,
        participants: list[str],
        protocols: dict[str, str],
    ) -> None:
        """The demoted leader: someone else promised a higher ballot."""

        def promised(acks: dict) -> None:
            best_ballot: Optional[list] = None
            chosen = record.type.value
            for payload in acks.values():
                info = (payload.get("txns") or {}).get(record.txn_id)
                if not info or info.get("accepted_value") is None:
                    continue
                accepted_at = info["accepted_ballot"]
                if best_ballot is None or ballot_key(accepted_at) > ballot_key(
                    best_ballot
                ):
                    best_ballot = accepted_at
                    chosen = info["accepted_value"]
            self._phase2(record, on_stable, ballot, chosen, participants, protocols)

        def rejected(acceptor: str, info: dict) -> None:
            bumped = max(int((info.get("promised") or ballot)[0]) + 1, ballot[0] + 1)
            self._phase1(
                record,
                on_stable,
                ballot=[bumped, self._site_id],
                participants=participants,
                protocols=protocols,
            )

        self._runtime.call(
            PX_1A,
            record.txn_id,
            {"ballot": ballot, "txns": [record.txn_id]},
            promised,
            rejected,
            label=f"1a {record.txn_id}",
        )

    def _adopt(
        self,
        record: LogRecord,
        chosen: str,
        on_stable: Optional[Callable[[], None]],
    ) -> None:
        """Force the quorum-chosen decision locally, then release it."""
        if chosen != record.type.value:
            # A takeover already decided differently; the engine's
            # in-memory decision must follow the quorum before the
            # stability callback emits and sends it.
            record.type = (
                RecordType.COMMIT if chosen == "commit" else RecordType.ABORT
            )
            record.payload["adopted"] = True
            entry = self._engine.table.get(record.txn_id) if self._engine else None
            if entry is not None:
                entry.decision = (
                    Outcome.COMMIT if chosen == "commit" else Outcome.ABORT
                )
        self.inner.force_append_async(record, on_stable)

    # -- explicit lifecycle pass-throughs ------------------------------------------

    def crash(self) -> int:
        return self.inner.crash()

    def reopen(self) -> None:
        self.inner.reopen()

    def __getattr__(self, name: str):
        # Everything else (append, flush, stable_records, gc, counters,
        # site_id, ...) is the wrapped log's business.
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return f"ReplicatedDecisionLog({self.inner!r})"
