"""Paxos Commit replication of the coordinator's decision (Gray &
Lamport, *Consensus on Transaction Commit*).

The subsystem layers consensus *under* the paper's presumption
protocols without touching the coordinator engine:

* :class:`~repro.replication.config.ReplicationConfig` — the static
  membership: 2F+1 acceptor sites plus the (initial) leader site.
* :class:`~repro.replication.acceptor.AcceptorEngine` — the per-site
  Paxos acceptor: per-transaction ballots, forced ACCEPT records in the
  site's own WAL, recovery from the log summary.
* :class:`~repro.replication.decision_log.ReplicatedDecisionLog` — the
  seam: a log wrapper the unmodified ``CoordinatorEngine`` writes
  through; a decision becomes *stable* (and hence sendable) only once a
  majority of acceptors accepted it.
* :class:`~repro.replication.failover.FailoverWatcher` /
  :class:`~repro.replication.failover.DecisionCompleter` — leader
  liveness tracking and the deterministic takeover path that completes
  (or presumes) in-flight transactions by reading the acceptor quorum.
* :class:`~repro.replication.runtime.SiteReplication` — the per-site
  facade wiring all of the above into ``repro.mdbs.site.Site``.

The presumption trick survives replication in a precise sense: only
*forced* coordinator decisions go through the quorum. A lazy decision
(a PrA abort, say) is exactly one the coordinator may forget — and the
quorum's default for an unaccepted transaction is the same presumption
(abort), so skipping consensus for it is safe. The one casualty is the
initiation-skipping optimization: every replicated transaction must be
*registered* with the acceptors before voting starts, so PrN/PrA
coordinators pay the initiation force they normally avoid (see
:mod:`repro.replication.policy`).
"""

from repro.replication.acceptor import AcceptorEngine, accept_record
from repro.replication.config import ReplicationConfig
from repro.replication.decision_log import ReplicatedDecisionLog
from repro.replication.failover import DecisionCompleter, FailoverWatcher
from repro.replication.messages import REPLICATION_KINDS
from repro.replication.policy import ReplicatedPolicy, ReplicatedSelector
from repro.replication.runtime import SiteReplication

__all__ = [
    "AcceptorEngine",
    "DecisionCompleter",
    "FailoverWatcher",
    "REPLICATION_KINDS",
    "ReplicatedDecisionLog",
    "ReplicatedPolicy",
    "ReplicatedSelector",
    "ReplicationConfig",
    "SiteReplication",
    "accept_record",
]
