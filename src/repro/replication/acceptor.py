"""The Paxos acceptor hosted alongside a participant engine.

One :class:`AcceptorEngine` holds per-transaction ballot state — the
paper-facing view is one Paxos instance per transaction, all sharing
the site's WAL. Every promise/accept is *forced* to the log before the
reply leaves (the acceptor-side force-before-send invariant: a reply
the proposer counts toward a majority must survive the acceptor's
crash), and recovery rebuilds the volatile table from the stable ACCEPT
records alone.

State accounting: acceptor state is durable protocol *metadata*, not a
protocol-table entry — it does not appear in
``Site.retained_transactions()`` (an acceptor is never blocked on it),
but its ACCEPT records do occupy the log and therefore show up in
``uncollected_log_transactions()`` until the leader's PX_FORGET
releases them, which keeps the operational-correctness checker honest
about replication's storage footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.net.message import Message
from repro.net.network import Network
from repro.replication.config import ReplicationConfig
from repro.replication.messages import (
    PX_1B,
    PX_2B,
    PX_FORGET,
    PX_REGISTER_ACK,
    PX_STATUS,
    ballot_key,
)
from repro.sim.kernel import Simulator
from repro.storage.log_records import LogRecord, RecordType
from repro.storage.stable_log import StableLog


def accept_record(
    txn_id: str,
    phase: str,
    ballot: Optional[list] = None,
    value: Optional[str] = None,
    participants: Optional[list[str]] = None,
    protocols: Optional[dict[str, str]] = None,
) -> LogRecord:
    """Build an acceptor-side ACCEPT record.

    ``phase`` is ``"register"`` (the replicated initiation),
    ``"promise"`` (phase 1b) or ``"accept"`` (phase 2b).
    """
    payload: dict[str, Any] = {"phase": phase}
    if ballot is not None:
        payload["ballot"] = list(ballot)
    if value is not None:
        payload["value"] = value
    if participants is not None:
        payload["participants"] = list(participants)
    if protocols is not None:
        payload["protocols"] = dict(protocols)
    return LogRecord(RecordType.ACCEPT, txn_id, payload)


@dataclass
class AcceptorTxn:
    """One transaction's Paxos-instance state at this acceptor."""

    participants: list[str] = field(default_factory=list)
    protocols: dict[str, str] = field(default_factory=dict)
    registered: bool = False
    register_stable: bool = False
    promised: Optional[list] = None
    accepted_ballot: Optional[list] = None
    accepted_value: Optional[str] = None
    accept_stable: bool = False


class AcceptorEngine:
    """Per-transaction Paxos acceptor over the site's stable log."""

    def __init__(
        self,
        sim: Simulator,
        site_id: str,
        log: StableLog,
        network: Network,
        config: ReplicationConfig,
    ) -> None:
        self._sim = sim
        self._site_id = site_id
        self._log = log
        self._network = network
        self._config = config
        self._txns: dict[str, AcceptorTxn] = {}
        self._epoch = 0
        #: Transactions released by PX_FORGET since the last GC sweep.
        self._released = 0

    @property
    def transactions(self) -> dict[str, AcceptorTxn]:
        return self._txns

    # -- proposer-facing handlers ------------------------------------------------

    def on_register(self, message: Message) -> None:
        """Force the registration, then ack (replicated initiation)."""
        txn_id = message.txn_id
        rid = message.get("rid")
        state = self._txns.setdefault(txn_id, AcceptorTxn())
        if state.registered:
            if state.register_stable:
                self._reply(message.sender, PX_REGISTER_ACK, txn_id, {"rid": rid})
            # else: the original force is still in flight; its callback
            # acks, and the proposer's retry covers message loss.
            return
        state.registered = True
        state.participants = list(message.get("participants") or [])
        state.protocols = dict(message.get("protocols") or {})
        record = accept_record(
            txn_id,
            "register",
            participants=state.participants,
            protocols=state.protocols,
        )
        epoch = self._epoch

        def stable() -> None:
            if epoch != self._epoch:
                return
            held = self._txns.get(txn_id)
            if held is not None:
                held.register_stable = True
            self._reply(message.sender, PX_REGISTER_ACK, txn_id, {"rid": rid})

        self._log.force_append_async(record, stable)

    def on_2a(self, message: Message) -> None:
        """Phase 2a: accept the proposed decision unless promised higher."""
        txn_id = message.txn_id
        rid = message.get("rid")
        ballot = list(message.get("ballot"))
        value = message.get("value")
        state = self._txns.setdefault(txn_id, AcceptorTxn())
        if not state.participants and message.get("participants"):
            # A proposer completing a transaction this acceptor never
            # saw registered (it was in the minority): adopt the
            # registration info carried on the 2a.
            state.participants = list(message.get("participants") or [])
            state.protocols = dict(message.get("protocols") or {})
        if state.promised is not None and ballot_key(state.promised) > ballot_key(
            ballot
        ):
            self._reply(
                message.sender,
                PX_2B,
                txn_id,
                {"rid": rid, "ok": False, "promised": list(state.promised)},
            )
            return
        if (
            state.accepted_ballot == ballot
            and state.accepted_value == value
        ):
            if state.accept_stable:
                self._reply(
                    message.sender,
                    PX_2B,
                    txn_id,
                    {"rid": rid, "ballot": ballot},
                )
            return
        state.promised = ballot
        state.accepted_ballot = ballot
        state.accepted_value = value
        state.accept_stable = False
        record = accept_record(
            txn_id,
            "accept",
            ballot=ballot,
            value=value,
            participants=state.participants,
            protocols=state.protocols,
        )
        epoch = self._epoch

        def stable() -> None:
            if epoch != self._epoch:
                return
            held = self._txns.get(txn_id)
            if held is not None and held.accepted_ballot == ballot:
                held.accept_stable = True
            self._reply(
                message.sender, PX_2B, txn_id, {"rid": rid, "ballot": ballot}
            )

        self._log.force_append_async(record, stable)

    def on_1a(self, message: Message) -> None:
        """Bulk phase 1a: promise the ballot over every in-scope txn.

        The reply carries, per transaction, the registration info and
        any previously accepted (ballot, value) — everything a takeover
        needs to complete or presume. A single transaction promised to
        a *higher* ballot nacks the whole sweep (the proposer bumps and
        retries); per-transaction promises are forced as one batch with
        one log force.
        """
        rid = message.get("rid")
        ballot = list(message.get("ballot"))
        scope = message.get("txns")
        in_scope = {
            txn_id: state
            for txn_id, state in sorted(self._txns.items())
            if scope is None or txn_id in scope
        }
        # Instances the proposer knows but this acceptor has never seen
        # (scoped retries and the leader's local initiation-only txns)
        # are promised too, so a stale ballot-0 fast path can no longer
        # slip in under the sweep.
        for txn_id in list(scope or []) + list(message.get("extra") or []):
            if txn_id not in in_scope:
                in_scope[txn_id] = self._txns.setdefault(txn_id, AcceptorTxn())
        for state in in_scope.values():
            if state.promised is not None and ballot_key(
                state.promised
            ) > ballot_key(ballot):
                self._reply(
                    message.sender,
                    PX_1B,
                    "",
                    {"rid": rid, "ok": False, "promised": list(state.promised)},
                )
                return
        to_force = []
        for txn_id, state in in_scope.items():
            if state.promised != ballot:
                state.promised = ballot
                to_force.append(accept_record(txn_id, "promise", ballot=ballot))
        reply_txns = {
            txn_id: {
                "participants": list(state.participants),
                "protocols": dict(state.protocols),
                "accepted_ballot": (
                    list(state.accepted_ballot)
                    if state.accepted_ballot is not None
                    else None
                ),
                "accepted_value": state.accepted_value,
            }
            for txn_id, state in in_scope.items()
        }
        payload = {"rid": rid, "ballot": ballot, "txns": reply_txns}
        if not to_force:
            self._reply(message.sender, PX_1B, "", payload)
            return
        for record in to_force[:-1]:
            self._log.append(record)
        epoch = self._epoch

        def stable() -> None:
            if epoch != self._epoch:
                return
            self._reply(message.sender, PX_1B, "", payload)

        # One force covers the whole batch: everything appended before
        # the forced record becomes stable with it.
        self._log.force_append_async(to_force[-1], stable)

    def on_forget(self, message: Message) -> None:
        """The leader is done with these transactions: drop and GC."""
        for txn_id in message.get("txns") or []:
            if txn_id in self._txns:
                del self._txns[txn_id]
                self._log.garbage_collect(txn_id)
                self._released += 1

    # -- lifecycle ---------------------------------------------------------------

    def crash(self) -> None:
        """Lose the volatile mirror; the ACCEPT records persist."""
        self._epoch += 1
        self._txns.clear()

    def recover(self) -> int:
        """Rebuild acceptor state from the stable ACCEPT records."""
        self._txns.clear()
        for record in self._log.stable_records():
            if record.type is not RecordType.ACCEPT:
                continue
            state = self._txns.setdefault(record.txn_id, AcceptorTxn())
            phase = record.get("phase")
            if phase == "register":
                state.registered = True
                state.register_stable = True
                state.participants = list(record.get("participants") or [])
                state.protocols = dict(record.get("protocols") or {})
            elif phase == "promise":
                state.promised = list(record.get("ballot"))
            elif phase == "accept":
                ballot = list(record.get("ballot"))
                state.promised = ballot
                state.accepted_ballot = ballot
                state.accepted_value = record.get("value")
                state.accept_stable = True
                if record.get("participants"):
                    state.participants = list(record.get("participants"))
                if record.get("protocols"):
                    state.protocols = dict(record.get("protocols"))
        self._sim.record(
            self._site_id,
            "recovery",
            "acceptor_done",
            instances=len(self._txns),
        )
        return len(self._txns)

    def collect_garbage(self) -> int:
        """GC sweep hook: poll the leader for still-held transactions.

        Returns the number of transactions released (by PX_FORGET)
        since the last sweep, so ``finalize`` keeps sweeping until the
        acceptor has drained.
        """
        if self._txns:
            self._network.send(
                Message(
                    PX_STATUS,
                    self._site_id,
                    self._config.leader,
                    "",
                    {"txns": sorted(self._txns)},
                )
            )
        released = self._released
        self._released = 0
        return released

    def _reply(
        self, receiver: str, kind: str, txn_id: str, payload: dict[str, Any]
    ) -> None:
        self._network.send(
            Message(kind, self._site_id, receiver, txn_id, payload)
        )


__all__ = ["AcceptorEngine", "AcceptorTxn", "accept_record"]
