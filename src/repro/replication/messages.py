"""Message kinds of the Paxos Commit layer.

All payloads are JSON-representable so the same messages ride the live
wire protocol unchanged. Ballots travel as ``[n, site_id]`` lists;
:func:`ballot_key` gives their total order (number first, proposer site
id as the tiebreak).
"""

from __future__ import annotations

#: Leader → acceptors: remember a transaction's participants and
#: protocols before voting starts (the replicated initiation).
PX_REGISTER = "PX_REGISTER"
#: Acceptor → leader: the registration's ACCEPT record is stable.
PX_REGISTER_ACK = "PX_REGISTER_ACK"
#: Proposer → acceptors: phase 2a — accept this decision at this ballot.
PX_2A = "PX_2A"
#: Acceptor → proposer: phase 2b — accepted (or nack with the promise).
PX_2B = "PX_2B"
#: Proposer → acceptors: phase 1a — promise this ballot (bulk, over all
#: in-flight transactions or an explicit ``txns`` scope).
PX_1A = "PX_1A"
#: Acceptor → proposer: phase 1b — per-transaction promises and any
#: previously accepted values.
PX_1B = "PX_1B"
#: Acceptor → leader: which transactions the acceptor still holds.
PX_STATUS = "PX_STATUS"
#: Leader → acceptor: these transactions are over; release their state.
PX_FORGET = "PX_FORGET"
#: Leader → acceptors: liveness beacon.
PX_PING = "PX_PING"

REPLICATION_KINDS = frozenset(
    {
        PX_REGISTER,
        PX_REGISTER_ACK,
        PX_2A,
        PX_2B,
        PX_1A,
        PX_1B,
        PX_STATUS,
        PX_FORGET,
        PX_PING,
    }
)


def ballot_key(ballot: list) -> tuple[int, str]:
    """Total order over ``[n, site_id]`` ballots."""
    return (int(ballot[0]), str(ballot[1]))
