"""Static replication membership and timing knobs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ReplicationConfig:
    """Membership and timing of one replicated-coordinator group.

    Attributes:
        acceptors: the 2F+1 acceptor site ids (F faults tolerated).
        leader: the site whose coordinator engine drives the fast path
            (ballot 0). Failover candidates are the acceptors in sorted
            order; membership is static for a run.
        heartbeat_interval: leader liveness beacon period.
        failover_timeout: silence before the first acceptor (rank 0)
            starts a takeover sweep.
        failover_stagger: extra silence per acceptor rank, so takeovers
            are staggered deterministically instead of racing.
        retry_interval: quorum-round message resend period.
    """

    acceptors: tuple[str, ...]
    leader: str = "tm"
    heartbeat_interval: float = 5.0
    failover_timeout: float = 40.0
    failover_stagger: float = 15.0
    retry_interval: float = 10.0

    def __post_init__(self) -> None:
        if len(self.acceptors) < 1:
            raise WorkloadError("replication needs at least one acceptor")
        if len(set(self.acceptors)) != len(self.acceptors):
            raise WorkloadError(f"duplicate acceptors: {self.acceptors!r}")

    @property
    def majority(self) -> int:
        """Quorum size: any two quorums intersect."""
        return len(self.acceptors) // 2 + 1

    def rank(self, site_id: str) -> int:
        """Deterministic takeover order: position in sorted membership."""
        return sorted(self.acceptors).index(site_id)

    def involves(self, site_id: str) -> bool:
        return site_id == self.leader or site_id in self.acceptors

    def to_dict(self) -> dict[str, Any]:
        """JSON form for the multi-process site configs."""
        return {
            "acceptors": list(self.acceptors),
            "leader": self.leader,
            "heartbeat_interval": self.heartbeat_interval,
            "failover_timeout": self.failover_timeout,
            "failover_stagger": self.failover_stagger,
            "retry_interval": self.retry_interval,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReplicationConfig":
        return cls(
            acceptors=tuple(data["acceptors"]),
            leader=data.get("leader", "tm"),
            heartbeat_interval=data.get("heartbeat_interval", 5.0),
            failover_timeout=data.get("failover_timeout", 40.0),
            failover_stagger=data.get("failover_stagger", 15.0),
            retry_interval=data.get("retry_interval", 10.0),
        )

    @classmethod
    def for_group(cls, n_acceptors: int, leader: str = "tm") -> "ReplicationConfig":
        """The standard topology: acceptors ``acc0..acc{N-1}`` under ``leader``."""
        return cls(
            acceptors=tuple(f"acc{i}" for i in range(n_acceptors)),
            leader=leader,
        )
