"""Per-site facade wiring the replication pieces into a ``Site``.

One :class:`SiteReplication` instance lives on every site the
:class:`~repro.replication.config.ReplicationConfig` involves:

* on the **leader**: binds the :class:`ReplicatedDecisionLog` to the
  coordinator engine, heartbeats the acceptors, answers PX_STATUS
  polls (the acceptor-state GC protocol), and replaces the engine's
  restart recovery with a quorum sweep — local decision/END shapes are
  replayed through the unmodified engine, but *initiation-only* shapes
  are **not** presumed aborted locally (the quorum may know better:
  a takeover might have committed them).
* on an **acceptor**: hosts the :class:`AcceptorEngine` and the
  :class:`FailoverWatcher`, and can itself become a proposer (takeover)
  that completes in-flight transactions through its own coordinator
  engine.

Proposer plumbing shared by both roles: rid allocation, the pending
:class:`QuorumCall` registry, and reply routing.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.core.events import Outcome
from repro.net.message import Message
from repro.net.network import Network
from repro.protocols.base import DECISION_KINDS
from repro.protocols.recovery import (
    CoordinatorLogSummary,
    summarize_coordinator_log,
)
from repro.replication.acceptor import AcceptorEngine
from repro.replication.config import ReplicationConfig
from repro.replication.failover import DecisionCompleter, FailoverWatcher
from repro.replication.messages import (
    PX_1A,
    PX_1B,
    PX_2A,
    PX_2B,
    PX_FORGET,
    PX_PING,
    PX_REGISTER,
    PX_REGISTER_ACK,
    PX_STATUS,
)
from repro.replication.quorum import QuorumCall
from repro.sim.kernel import Simulator
from repro.storage.log_records import RecordType, decision_record


class SiteReplication:
    """Everything replication adds to one site."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: ReplicationConfig,
        site,
    ) -> None:
        self._sim = sim
        self._network = network
        self._config = config
        self._site = site
        self._site_id = site.site_id
        self._is_leader = site.site_id == config.leader
        self._is_acceptor = site.site_id in config.acceptors
        self._rids = itertools.count(1)
        self._calls: dict[int, QuorumCall] = {}
        self._completer: Optional[DecisionCompleter] = None
        self._recovering = False
        self._held_inquiries: list[Message] = []
        self._epoch = 0
        self._hb_timer = None
        self.acceptor: Optional[AcceptorEngine] = None
        self.watcher: Optional[FailoverWatcher] = None
        if self._is_acceptor:
            self.acceptor = AcceptorEngine(
                sim, site.site_id, site.log, network, config
            )
            self.watcher = FailoverWatcher(sim, site.site_id, config, self)
        if self._is_leader:
            site.log.bind(self, site.coordinator)
            self._arm_heartbeat()

    @property
    def is_leader(self) -> bool:
        return self._is_leader

    @property
    def is_acceptor(self) -> bool:
        return self._is_acceptor

    # -- proposer plumbing -------------------------------------------------------

    def call(
        self,
        kind: str,
        txn_id: str,
        payload: dict[str, Any],
        on_majority: Callable[[dict[str, dict]], None],
        on_reject: Optional[Callable[[str, dict], None]] = None,
        label: str = "",
    ) -> QuorumCall:
        """Start one majority round over the acceptor group."""
        return QuorumCall(
            self._sim,
            self._network,
            self._site_id,
            self._config,
            self._calls,
            next(self._rids),
            kind,
            txn_id,
            payload,
            on_majority,
            on_reject,
            label,
        ).start()

    # -- message dispatch --------------------------------------------------------

    def on_message(self, message: Message) -> None:
        kind = message.kind
        if kind == PX_PING:
            if self.watcher is not None:
                self.watcher.on_ping()
            return
        if kind in (PX_REGISTER, PX_2A, PX_1A):
            if self.watcher is not None:
                self.watcher.on_proposer_traffic()
            if self.acceptor is None:
                return
            if kind == PX_REGISTER:
                self.acceptor.on_register(message)
            elif kind == PX_2A:
                self.acceptor.on_2a(message)
            else:
                self.acceptor.on_1a(message)
            return
        if kind == PX_FORGET:
            if self.acceptor is not None:
                self.acceptor.on_forget(message)
            return
        if kind == PX_STATUS:
            self._on_status(message)
            return
        if kind in (PX_REGISTER_ACK, PX_2B, PX_1B):
            call = self._calls.get(message.get("rid"))
            if call is not None:
                call.on_reply(message)
            return

    def _on_status(self, message: Message) -> None:
        """Acceptor-state GC: release what the leader no longer tracks.

        Deferred while a recovery sweep runs — a transaction may be
        absent from the table only because the sweep has not completed
        it yet, and forgetting its acceptor state would erase exactly
        the evidence the sweep needs.
        """
        if not self._is_leader or self._recovering:
            return
        engine = self._site.coordinator
        if engine is None:
            return
        done = [
            txn_id
            for txn_id in message.get("txns") or []
            if engine.table.get(txn_id) is None
        ]
        if done:
            self._network.send(
                Message(
                    PX_FORGET,
                    self._site_id,
                    message.sender,
                    "",
                    {"txns": done},
                )
            )

    # -- leader heartbeat --------------------------------------------------------

    def _arm_heartbeat(self) -> None:
        self._hb_timer = self._sim.set_timer(
            self._config.heartbeat_interval,
            self._heartbeat,
            label=f"px-ping {self._site_id}",
        )

    def _heartbeat(self) -> None:
        for acceptor in self._config.acceptors:
            self._network.send(
                Message(PX_PING, self._site_id, acceptor, "", {})
            )
        self._arm_heartbeat()

    # -- takeover / leader recovery ----------------------------------------------

    def start_takeover(self, on_done: Callable[[int], None]) -> None:
        """This acceptor elects itself and sweeps the quorum."""
        if self._completer is not None:
            self._completer.cancel()
        self._completer = DecisionCompleter(
            self._sim,
            self._site_id,
            self._config,
            self,
            ballot_n=1 + self._config.rank(self._site_id),
            skip=self._locally_complete,
            on_txn=self._complete_txn,
            on_done=lambda n: self._takeover_done(n, on_done),
        )
        self._completer.start()

    def _takeover_done(self, completed: int, on_done: Callable[[int], None]) -> None:
        self._completer = None
        on_done(completed)

    def recover_leader(self) -> None:
        """Replicated replacement for ``CoordinatorEngine.recover``.

        Local decision/END log shapes replay through the engine as
        before. Initiation-only shapes are *not* presumed aborted —
        a takeover may have decided them — and instead join the quorum
        sweep, which also surfaces transactions only the acceptors
        remember (registration reached a quorum, the local force's
        context was lost with the crash).
        """
        engine = self._site.coordinator
        assert engine is not None
        pending: dict[str, dict] = {}
        analyzed = 0
        for summary in summarize_coordinator_log(self._site.log):
            analyzed += 1
            if summary.has_end or summary.decision is not None:
                engine._recovery_action(summary)
            else:
                pending[summary.txn_id] = {
                    "participants": list(summary.participants),
                    "protocols": dict(summary.initiation_protocols),
                }
        self._recovering = True
        self._sim.record(
            self._site_id,
            "recovery",
            "replicated_sweep",
            analyzed=analyzed,
            local_pending=len(pending),
        )
        if self._completer is not None:
            self._completer.cancel()
        self._completer = DecisionCompleter(
            self._sim,
            self._site_id,
            self._config,
            self,
            ballot_n=1,
            extra=pending,
            skip=self._locally_complete,
            on_txn=self._complete_txn,
            on_done=self._leader_sweep_done,
        )
        self._completer.start()

    def defer_inquiry(self, message: Message) -> bool:
        """True if this INQUIRY must wait for the recovery sweep.

        The engine answers an inquiry about an unknown transaction by
        the *inquirer's* presumption. That is sound only once the sweep
        has proven the quorum holds no chosen value for it — before
        that, "unknown" may just mean the crash erased the local
        context, and a presumed-commit participant told "commit" while
        the sweep resolves the instance to the default abort diverges
        the enforced outcomes. Transactions the engine still has in its
        table answer from real state and pass straight through; the
        rest are held and replayed when the sweep lands.
        """
        engine = self._site.coordinator
        if not self._recovering or engine is None:
            return False
        if engine.table.get(message.txn_id) is not None:
            return False
        self._held_inquiries.append(message)
        self._sim.record(
            self._site_id,
            "replication",
            "inquiry_deferred",
            txn=message.txn_id,
            inquirer=message.sender,
        )
        return True

    def _leader_sweep_done(self, completed: int) -> None:
        self._recovering = False
        self._completer = None
        self._sim.record(
            self._site_id,
            "recovery",
            "replicated_sweep_done",
            completed=completed,
        )
        engine = self._site.coordinator
        held, self._held_inquiries = self._held_inquiries, []
        for message in held:
            if engine is not None:
                engine.on_inquiry(message)

    def _locally_complete(self, txn_id: str) -> bool:
        engine = self._site.coordinator
        if engine is not None and engine.table.get(txn_id) is not None:
            return True
        for record in self._site.log.records_for(txn_id):
            if record.type is RecordType.END:
                return True
            if record.is_decision and record.get("by") == "coordinator":
                return True
        return False

    def _complete_txn(self, txn_id: str, value: str, info: dict) -> None:
        """A value is chosen at quorum: force it locally, then re-enter
        the engine's decision phase (notification, acks, END, GC)."""
        engine = self._site.coordinator
        if engine is None or self._locally_complete(txn_id):
            return
        outcome = Outcome.COMMIT if value == "commit" else Outcome.ABORT
        participants = list(info.get("participants") or [])
        protocols = dict(info.get("protocols") or {})
        policy = (
            engine.selector.select(protocols)
            if protocols
            else engine.selector.by_name("PrN")
        )
        record = decision_record(
            txn_id, value, participants=participants, role="coordinator"
        )
        # The leader's log is the replicating wrapper; takeover and
        # recovery decisions are already chosen at quorum, so they are
        # forced straight into the underlying log.
        log = getattr(self._site.log, "inner", self._site.log)
        epoch = self._epoch

        def stable() -> None:
            if epoch != self._epoch:
                return
            if engine.table.get(txn_id) is not None:
                return
            summary = CoordinatorLogSummary(
                txn_id=txn_id,
                has_initiation=False,
                initiation_protocols=dict(protocols),
                decision=outcome,
                has_end=False,
                participants=participants,
            )
            engine._reinitiate(summary, policy, outcome)
            if not self._is_leader:
                # §4.2 sends the recovered decision only to the
                # participants whose ack is expected; the rest are
                # presumption-covered and *inquire* — but their inquiry
                # channel is the dead leader. A takeover therefore
                # pushes the decision to them too (duplicate decisions
                # are enforced-once / blind-acked, so this is safe).
                ackers = {
                    p
                    for p in participants
                    if p in protocols
                    and policy.ack_expected(protocols[p], outcome)
                }
                for participant in participants:
                    if participant not in ackers:
                        engine._send(
                            DECISION_KINDS[outcome], participant, txn_id
                        )

        log.force_append_async(record, stable)

    # -- lifecycle ---------------------------------------------------------------

    def crash(self) -> None:
        self._epoch += 1
        for call in list(self._calls.values()):
            call.cancel()
        self._calls.clear()
        if self._completer is not None:
            self._completer.cancel()
            self._completer = None
        self._recovering = False
        self._held_inquiries.clear()
        if self._hb_timer is not None:
            self._hb_timer.cancel()
            self._hb_timer = None
        if self.acceptor is not None:
            self.acceptor.crash()
        if self.watcher is not None:
            self.watcher.crash()

    def recover(self) -> None:
        """Restart: acceptor state first (from disk), then roles."""
        if self.acceptor is not None:
            self.acceptor.recover()
        if self.watcher is not None:
            self.watcher.recover()
        engine = self._site.coordinator
        if self._is_leader:
            self._arm_heartbeat()
            if engine is not None:
                self.recover_leader()
        elif engine is not None:
            engine.recover()

    def collect_garbage(self) -> int:
        """GC sweep hook for ``Site.flush_and_gc``."""
        if self.acceptor is not None:
            return self.acceptor.collect_garbage()
        return 0
