"""repro — an executable reproduction of *Atomicity with Incompatible
Presumptions* (Al-Houmaily & Chrysanthis, PODS 1999).

The library implements, from scratch, a deterministic discrete-event
simulation of a multidatabase system whose sites employ different
two-phase-commit variants — presumed nothing (PrN), presumed abort
(PrA) and presumed commit (PrC) — plus:

* **PrAny**, the paper's protocol integrating all three,
* **U2PC** and **C2PC**, the flawed integrations of Theorems 1 and 2,
* an executable ACTA-style history with the **SafeState** predicate
  (Definition 2) and the **operational correctness** criterion
  (Definition 1) as machine-checked run invariants.

Quickstart::

    from repro import MDBS, simple_transaction

    mdbs = MDBS(seed=42)
    mdbs.add_site("alpha", protocol="PrA")
    mdbs.add_site("beta", protocol="PrC")
    mdbs.add_site("tm", protocol="PrN", coordinator="dynamic")
    mdbs.submit(simple_transaction("t1", "tm", ["alpha", "beta"]))
    mdbs.run(until=200)
    mdbs.finalize()
    assert mdbs.check().all_hold

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced figures and theorems.
"""

from repro.core import (
    AtomicityReport,
    History,
    OperationalReport,
    Outcome,
    Presumption,
    SafeStateReport,
    check_atomicity,
    check_operational_correctness,
    check_safe_state,
    presumption_of_protocol,
)
from repro.errors import (
    AtomicityViolation,
    CorrectnessViolation,
    OperationalCorrectnessViolation,
    ProtocolError,
    ReproError,
    SafeStateViolation,
)
from repro.mdbs import (
    MDBS,
    GlobalTransaction,
    RunReports,
    Site,
    WriteOp,
    simple_transaction,
)
from repro.net import CrashSchedule, FailureInjector, Message, Network
from repro.protocols import (
    CoordinatorPolicy,
    TimeoutConfig,
    coordinator_policy,
    participant_spec,
    selector_for,
)
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "AtomicityReport",
    "AtomicityViolation",
    "CoordinatorPolicy",
    "CorrectnessViolation",
    "CrashSchedule",
    "FailureInjector",
    "GlobalTransaction",
    "History",
    "MDBS",
    "Message",
    "Network",
    "OperationalCorrectnessViolation",
    "OperationalReport",
    "Outcome",
    "Presumption",
    "ProtocolError",
    "ReproError",
    "RunReports",
    "SafeStateReport",
    "SafeStateViolation",
    "Simulator",
    "Site",
    "TimeoutConfig",
    "WriteOp",
    "__version__",
    "check_atomicity",
    "check_operational_correctness",
    "check_safe_state",
    "coordinator_policy",
    "participant_spec",
    "presumption_of_protocol",
    "selector_for",
    "simple_transaction",
]
