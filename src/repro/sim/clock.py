"""Virtual clock for the discrete-event simulator."""

from __future__ import annotations

from repro.errors import ClockError


class VirtualClock:
    """A monotonically non-decreasing virtual clock.

    Time is a float measured in abstract "time units"; the network and
    workload layers decide what one unit means (we treat it as one
    millisecond in the documentation of defaults, but nothing in the
    kernel depends on that).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            ClockError: if ``when`` is earlier than the current time.
        """
        if when < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now!r} to {when!r}"
            )
        self._now = float(when)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now!r})"
