"""Named, seeded random-number streams.

Each subsystem (network latency, workload generation, failure
injection, ...) draws from its own stream derived deterministically from
the master seed. Adding draws to one subsystem therefore never perturbs
the random sequence seen by another, which keeps experiments comparable
across code changes.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A factory of independent ``random.Random`` streams.

    The stream for a given name is created lazily and cached, so
    repeated lookups return the same (advancing) generator. Derivation
    hashes the master seed together with the stream name, so streams are
    statistically independent and stable across runs.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the named stream, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self._master_seed}:{name}".encode("utf-8")
        ).digest()
        derived_seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(derived_seed)
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(
            f"{self._master_seed}/fork:{name}".encode("utf-8")
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return (
            f"RandomStreams(master_seed={self._master_seed}, "
            f"streams={sorted(self._streams)})"
        )
