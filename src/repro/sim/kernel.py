"""The discrete-event simulator kernel.

:class:`Simulator` ties together the virtual clock, the event queue,
the random streams and the trace recorder. All higher layers schedule
work through :meth:`Simulator.schedule` / :meth:`Simulator.set_timer`
and never sleep or touch wall-clock time, which makes every run a pure
function of ``(code, seed, schedule)``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.event_queue import EventQueue, ScheduledEvent
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceRecorder


class Timer:
    """A cancellable timer handle returned by :meth:`Simulator.set_timer`."""

    __slots__ = ("_event",)

    def __init__(self, event: ScheduledEvent) -> None:
        self._event = event

    @property
    def deadline(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> None:
        self._event.cancel()

    def __repr__(self) -> str:
        state = "active" if self.active else "cancelled"
        return f"Timer(deadline={self.deadline!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator(seed=7)
        >>> fired = []
        >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self, seed: int = 0) -> None:
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.random = RandomStreams(seed)
        self.trace = TraceRecorder()
        self._steps_executed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock._now

    @property
    def steps_executed(self) -> int:
        """Number of events the kernel has fired so far."""
        return self._steps_executed

    def record(self, site: str, category: str, name: str, **details: Any):
        """Record a trace event stamped with the current virtual time."""
        return self.trace.record(self.now, site, category, name, **details)

    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self.queue.push(self.clock._now + delay, action, label)

    def schedule_at(
        self,
        when: float,
        action: Callable[[], Any],
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``action`` to run at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when!r}, which is before now ({self.now!r})"
            )
        return self.queue.push(when, action, label)

    def set_timer(
        self,
        delay: float,
        action: Callable[[], Any],
        label: str = "timer",
    ) -> Timer:
        """Like :meth:`schedule`, but returns a cancellable :class:`Timer`."""
        return Timer(self.schedule(delay, action, label))

    def step(self) -> bool:
        """Fire the next pending event.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._steps_executed += 1
        event.action()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_steps: int = 10_000_000,
    ) -> None:
        """Run events until the queue drains or ``until`` is reached.

        Args:
            until: stop once the next event would fire after this time;
                the clock is then advanced exactly to ``until``.
            max_steps: safety valve against runaway schedules.

        Raises:
            SimulationError: if ``max_steps`` events fire without the
                queue draining, which indicates a scheduling loop.
        """
        # This loop dispatches every event of every run, so it is the
        # hottest few lines in the repository (see the kernel-dispatch
        # scenario in BENCH_sim.json). It reaches into the queue's heap
        # directly — fusing peek/reap/pop into one heap access per
        # event — and advances the clock without the per-event
        # property/validation hops: heap order plus the monotonicity
        # checks at scheduling time already guarantee popped times are
        # non-decreasing, and `EventQueue.push` coerces times to float.
        heap = self.queue._heap
        clock = self.clock
        heappop = heapq.heappop
        steps = 0
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heappop(heap)
                continue
            event_time = entry[0]
            if until is not None and event_time > until:
                break
            heappop(heap)
            clock._now = event_time
            self._steps_executed += 1
            event.action()
            steps += 1
            if steps >= max_steps:
                raise SimulationError(
                    f"simulation did not quiesce within {max_steps} steps"
                )
        if until is not None and until > clock._now:
            clock.advance_to(until)

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now!r}, pending={len(self.queue)}, "
            f"steps={self._steps_executed})"
        )
