"""Run tracing.

Every observable action in a simulation — a log write, a message send
or delivery, a protocol decision, a crash, a recovery step — is recorded
as a :class:`TraceEvent`. The trace is the raw material for:

* the executable ACTA history (``repro.core.history``),
* the correctness checkers (``repro.core.correctness``),
* the figure-flow renderers (``repro.experiments.flows``).

:meth:`TraceRecorder.record` is on the hot path of every simulation
(the ``trace-record`` scenario in ``BENCH_sim.json`` tracks it), so
:class:`TraceEvent` is a slotted plain class rather than a dataclass,
the keyword-argument ``details`` dict is adopted rather than copied
(``**details`` at the call boundary already made it fresh), and the
site/category/name strings are interned so the equality tests in
:meth:`TraceEvent.matches` hit CPython's pointer fast path.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Iterable, Iterator, Optional

_intern = sys.intern


class TraceEvent:
    """A single recorded occurrence in a simulation run.

    Treat instances as immutable: they are shared by every consumer of
    the trace (checkers, histories, exports, subscribers).

    Attributes:
        time: virtual time at which the event occurred.
        seq: global sequence number; totally orders the trace, including
            events that share a timestamp.
        site: identifier of the site where the event happened, or ``""``
            for system-level events.
        category: coarse event class, e.g. ``"log"``, ``"msg"``,
            ``"protocol"``, ``"crash"``, ``"recovery"``, ``"db"``.
        name: event name within the category, e.g. ``"force_write"``,
            ``"send"``, ``"decide"``.
        details: free-form payload (transaction id, record type, ...).
    """

    __slots__ = ("time", "seq", "site", "category", "name", "details")

    def __init__(
        self,
        time: float,
        seq: int,
        site: str,
        category: str,
        name: str,
        details: Optional[dict[str, Any]] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.site = site
        self.category = category
        self.name = name
        self.details = {} if details is None else details

    def matches(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        site: Optional[str] = None,
        **details: Any,
    ) -> bool:
        """True if this event matches every given criterion."""
        if category is not None and self.category != category:
            return False
        if name is not None and self.name != name:
            return False
        if site is not None and self.site != site:
            return False
        for key, value in details.items():
            if self.details.get(key) != value:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.time == other.time
            and self.seq == other.seq
            and self.site == other.site
            and self.category == other.category
            and self.name == other.name
            and self.details == other.details
        )

    def __repr__(self) -> str:
        return (
            f"TraceEvent(time={self.time!r}, seq={self.seq!r}, "
            f"site={self.site!r}, category={self.category!r}, "
            f"name={self.name!r}, details={self.details!r})"
        )

    def __str__(self) -> str:
        payload = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        where = self.site or "<system>"
        return f"[{self.time:10.3f} #{self.seq:>6}] {where}: {self.category}.{self.name} ({payload})"


class TraceRecorder:
    """Append-only store of :class:`TraceEvent` for one simulation run."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._next_seq = 0
        self._subscribers: list[Callable[[TraceEvent], None]] = []
        self._enabled_categories: Optional[frozenset[str]] = None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """Immutable snapshot of the trace so far."""
        return tuple(self._events)

    def set_category_filter(
        self, categories: Optional[Iterable[str]]
    ) -> None:
        """Record only events whose category is in ``categories``.

        ``None`` removes the filter (the default: record everything).
        Filtered events are dropped entirely — they consume no sequence
        number, reach no subscriber and never allocate a
        :class:`TraceEvent`; :meth:`record` returns ``None`` for them.

        This is a throughput lever for trace-heavy callers that only
        consume a known slice of the trace. It changes what the trace
        *is*: never enable it where the full trace is load-bearing —
        checkers that read filtered-out categories, trace digests or
        exported artifacts (``repro.explore`` replays assert byte-exact
        digests of *full* traces), or crash injection triggered on
        filtered-out events.
        """
        if categories is None:
            self._enabled_categories = None
        else:
            self._enabled_categories = frozenset(
                _intern(category) for category in categories
            )

    @property
    def category_filter(self) -> Optional[frozenset[str]]:
        """The enabled categories, or ``None`` when unfiltered."""
        return self._enabled_categories

    def record(
        self,
        time: float,
        site: str,
        category: str,
        name: str,
        **details: Any,
    ) -> Optional[TraceEvent]:
        """Append an event to the trace and notify subscribers.

        Returns the recorded event, or ``None`` when a category filter
        dropped it. The ``details`` keyword dict is adopted, not copied:
        the ``**`` call boundary already made it this call's own.
        """
        enabled = self._enabled_categories
        if enabled is not None and category not in enabled:
            return None
        event = TraceEvent(
            time,
            self._next_seq,
            _intern(site),
            _intern(category),
            _intern(name),
            details,
        )
        self._next_seq += 1
        self._events.append(event)
        if self._subscribers:
            for subscriber in self._subscribers:
                subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` for every subsequently recorded event."""
        self._subscribers.append(callback)

    def select(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        site: Optional[str] = None,
        **details: Any,
    ) -> list[TraceEvent]:
        """All events matching the given criteria, in trace order."""
        return [
            event
            for event in self._events
            if event.matches(category=category, name=name, site=site, **details)
        ]

    def first(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        site: Optional[str] = None,
        **details: Any,
    ) -> Optional[TraceEvent]:
        """First matching event, or ``None``."""
        for event in self._events:
            if event.matches(category=category, name=name, site=site, **details):
                return event
        return None

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable multi-line rendering of the trace."""
        events = self._events if limit is None else self._events[:limit]
        return "\n".join(str(event) for event in events)
