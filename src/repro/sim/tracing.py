"""Run tracing.

Every observable action in a simulation — a log write, a message send
or delivery, a protocol decision, a crash, a recovery step — is recorded
as a :class:`TraceEvent`. The trace is the raw material for:

* the executable ACTA history (``repro.core.history``),
* the correctness checkers (``repro.core.correctness``),
* the figure-flow renderers (``repro.experiments.flows``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """A single recorded occurrence in a simulation run.

    Attributes:
        time: virtual time at which the event occurred.
        seq: global sequence number; totally orders the trace, including
            events that share a timestamp.
        site: identifier of the site where the event happened, or ``""``
            for system-level events.
        category: coarse event class, e.g. ``"log"``, ``"msg"``,
            ``"protocol"``, ``"crash"``, ``"recovery"``, ``"db"``.
        name: event name within the category, e.g. ``"force_write"``,
            ``"send"``, ``"decide"``.
        details: free-form payload (transaction id, record type, ...).
    """

    time: float
    seq: int
    site: str
    category: str
    name: str
    details: dict[str, Any] = field(default_factory=dict)

    def matches(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        site: Optional[str] = None,
        **details: Any,
    ) -> bool:
        """True if this event matches every given criterion."""
        if category is not None and self.category != category:
            return False
        if name is not None and self.name != name:
            return False
        if site is not None and self.site != site:
            return False
        for key, value in details.items():
            if self.details.get(key) != value:
                return False
        return True

    def __str__(self) -> str:
        payload = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        where = self.site or "<system>"
        return f"[{self.time:10.3f} #{self.seq:>6}] {where}: {self.category}.{self.name} ({payload})"


class TraceRecorder:
    """Append-only store of :class:`TraceEvent` for one simulation run."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._next_seq = 0
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """Immutable snapshot of the trace so far."""
        return tuple(self._events)

    def record(
        self,
        time: float,
        site: str,
        category: str,
        name: str,
        **details: Any,
    ) -> TraceEvent:
        """Append an event to the trace and notify subscribers."""
        event = TraceEvent(
            time=time,
            seq=self._next_seq,
            site=site,
            category=category,
            name=name,
            details=dict(details),
        )
        self._next_seq += 1
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` for every subsequently recorded event."""
        self._subscribers.append(callback)

    def select(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        site: Optional[str] = None,
        **details: Any,
    ) -> list[TraceEvent]:
        """All events matching the given criteria, in trace order."""
        return [
            event
            for event in self._events
            if event.matches(category=category, name=name, site=site, **details)
        ]

    def first(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        site: Optional[str] = None,
        **details: Any,
    ) -> Optional[TraceEvent]:
        """First matching event, or ``None``."""
        for event in self._events:
            if event.matches(category=category, name=name, site=site, **details):
                return event
        return None

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable multi-line rendering of the trace."""
        events = self._events if limit is None else self._events[:limit]
        return "\n".join(str(event) for event in events)
