"""Deterministic discrete-event simulation kernel.

The kernel provides a virtual clock, an ordered event queue, cancellable
timers, seeded random-number streams and a trace recorder. All higher
layers (network, sites, protocols) are driven exclusively by this kernel
so that every run is reproducible from its seed and schedule.
"""

from repro.sim.clock import VirtualClock
from repro.sim.export import diff_traces, dump_trace, load_trace
from repro.sim.event_queue import EventQueue, ScheduledEvent
from repro.sim.kernel import Simulator, Timer
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceEvent, TraceRecorder

__all__ = [
    "EventQueue",
    "diff_traces",
    "dump_trace",
    "load_trace",
    "RandomStreams",
    "ScheduledEvent",
    "Simulator",
    "Timer",
    "TraceEvent",
    "TraceRecorder",
    "VirtualClock",
]
