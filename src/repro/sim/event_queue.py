"""Priority event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence)`` where the sequence number is
assigned at scheduling time. Two events scheduled for the same instant
therefore fire in scheduling order, which keeps runs deterministic
without relying on heap tie-breaking accidents.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class ScheduledEvent:
    """A callback scheduled to fire at a point in virtual time.

    Instances are created by :class:`EventQueue.push` and can be
    cancelled; cancelled events stay in the heap but are skipped when
    popped (lazy deletion).
    """

    __slots__ = ("time", "seq", "action", "label", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], Any],
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing when its time comes."""
        self.cancelled = True

    def sort_key(self) -> tuple[float, int]:
        return (self.time, self.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return (
            f"ScheduledEvent(t={self.time!r}, seq={self.seq}, "
            f"label={self.label!r}, {state})"
        )


class EventQueue:
    """A min-heap of :class:`ScheduledEvent` ordered by (time, seq)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._next_seq = 0

    def __len__(self) -> int:
        return sum(1 for __, __, ev in self._heap if not ev.cancelled)

    @property
    def raw_size(self) -> int:
        """Heap size including cancelled (not yet reaped) events."""
        return len(self._heap)

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``action`` to fire at virtual time ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        # Times are coerced to float here, once, so the kernel's hot
        # dispatch loop can assign them to the clock without conversion.
        seq = self._next_seq
        self._next_seq = seq + 1
        event = ScheduledEvent(float(time), seq, action, label)
        heapq.heappush(self._heap, (event.time, seq, event))
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._reap()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._reap()
        if not self._heap:
            return None
        __, __, event = heapq.heappop(self._heap)
        return event

    def _reap(self) -> None:
        """Drop cancelled events from the front of the heap."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
