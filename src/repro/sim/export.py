"""Trace export, import and diffing.

Runs are deterministic, so a trace file is a complete, replayable
record of an experiment: dump it next to results, reload it later to
re-run the correctness checkers or the history extraction without
re-simulating, and diff two traces to pin down where runs diverge.

Format: JSON Lines — one event object per line, in sequence order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.errors import SimulationError
from repro.sim.tracing import TraceEvent, TraceRecorder

PathLike = Union[str, Path]


def dump_trace(trace: TraceRecorder, path: PathLike) -> int:
    """Write the trace to ``path`` as JSON Lines.

    Returns:
        The number of events written.
    """
    destination = Path(path)
    with destination.open("w", encoding="utf-8") as handle:
        for event in trace:
            handle.write(
                json.dumps(
                    {
                        "time": event.time,
                        "seq": event.seq,
                        "site": event.site,
                        "category": event.category,
                        "name": event.name,
                        "details": event.details,
                    },
                    sort_keys=True,
                )
            )
            handle.write("\n")
    return len(trace)


def load_trace(path: PathLike) -> TraceRecorder:
    """Load a JSON Lines trace file back into a :class:`TraceRecorder`.

    Raises:
        SimulationError: if the file's sequence numbers are not the
            contiguous run ``0..n-1`` (a corrupted or truncated file).
    """
    recorder = TraceRecorder()
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload["seq"] != line_number:
                raise SimulationError(
                    f"{source}: event at line {line_number + 1} has "
                    f"seq={payload['seq']}; trace files must be contiguous"
                )
            recorded = recorder.record(
                payload["time"],
                payload["site"],
                payload["category"],
                payload["name"],
                **payload["details"],
            )
            assert recorded.seq == payload["seq"]
    return recorder


def event_key(event: TraceEvent) -> tuple:
    """The comparable identity of an event (everything but nothing)."""
    return (
        event.seq,
        event.time,
        event.site,
        event.category,
        event.name,
        tuple(sorted(event.details.items())),
    )


def diff_traces(
    a: Iterable[TraceEvent], b: Iterable[TraceEvent]
) -> list[tuple[int, str, str]]:
    """First-divergence-oriented diff of two traces.

    Returns:
        ``(index, left, right)`` triples for every position where the
        traces disagree; ``"<missing>"`` marks a shorter trace's end.
        An empty list means the runs were identical.
    """
    left = list(a)
    right = list(b)
    differences: list[tuple[int, str, str]] = []
    for index in range(max(len(left), len(right))):
        left_event = left[index] if index < len(left) else None
        right_event = right[index] if index < len(right) else None
        if (
            left_event is not None
            and right_event is not None
            and event_key(left_event) == event_key(right_event)
        ):
            continue
        differences.append(
            (
                index,
                str(left_event) if left_event is not None else "<missing>",
                str(right_event) if right_event is not None else "<missing>",
            )
        )
    return differences
