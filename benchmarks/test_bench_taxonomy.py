"""Benchmark F5: the taxonomy of atomic commitment (Figure 5)."""

from benchmarks.conftest import emit
from repro.analysis.taxonomy import TAXONOMY, classify, render_taxonomy


def test_bench_taxonomy(once):
    rendered = once(render_taxonomy)
    classifications = "\n".join(
        f"{protocol}: {' > '.join(classify(protocol))}"
        for protocol in ("PrN", "PrA", "PrC", "PrAny", "U2PC(PrC)", "C2PC(PrN)")
    )
    emit("F5 — taxonomy (Figure 5)", rendered + "\n\n" + classifications)
    assert TAXONOMY.find("Semantic Compensation") is not None
