"""Benchmark C3: dynamic protocol selection ablation."""

from benchmarks.conftest import emit
from repro.experiments.selection import render_selection, selection_ablation


def test_bench_selection_ablation(once):
    result = once(selection_ablation)
    emit("C3 — selection ablation", render_selection(result))
    assert result.savings("all-PrN")[0] > 0
    assert result.savings("all-PrA")[0] > 0
    assert result.savings("all-PrC") == (0, 0)
