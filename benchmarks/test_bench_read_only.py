"""Benchmark C4: the read-only (READ vote) optimization."""

from benchmarks.conftest import emit
from repro.experiments.read_only import (
    render_read_only,
    run_read_only_experiment,
)


def test_bench_read_only(once):
    result = once(run_read_only_experiment)
    emit("C4 — read-only optimization", render_read_only(result))
    assert result.always_correct
    assert all(
        result.savings(mix)[0] > 0
        for mix in ("all-PrN", "all-PrA", "all-PrC", "PrN+PrA+PrC")
    )
