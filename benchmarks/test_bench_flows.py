"""Benchmarks F1a–F4b: regenerate every protocol-flow figure.

Each benchmark runs the figure's exact configuration, checks the
observed per-site lanes against the paper's diagram, and prints the
reproduced flow.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.flows import (
    FIGURES,
    matches_figure,
    render_flow,
    reproduce_figure,
)


@pytest.mark.parametrize("figure_id", sorted(FIGURES))
def test_bench_figure_flow(once, figure_id):
    result = once(reproduce_figure, figure_id)
    verdict = matches_figure(result)
    emit(
        f"{figure_id} — {result.case.figure} ({result.case.outcome})",
        render_flow(result) + f"\nlane match vs paper figure: {verdict}",
    )
    assert all(verdict.values())
    assert result.reports_hold
