"""Benchmark C1: the measured commit-processing cost table."""

from benchmarks.conftest import emit
from repro.experiments.costs import cost_table, run_cost_experiment


def test_bench_costs_two_participants(once):
    result = once(run_cost_experiment, n_participants=2)
    emit("C1 — cost table (N=2)", cost_table(result))
    assert result.prc_commit_cheaper_for_participants_than_pra
    assert result.pra_abort_is_free_at_coordinator
    assert result.prn_never_strictly_cheapest


def test_bench_costs_four_participants(once):
    result = once(run_cost_experiment, n_participants=4)
    emit("C1 — cost table (N=4)", cost_table(result))
    assert result.prn_never_strictly_cheapest
