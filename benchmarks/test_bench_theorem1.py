"""Benchmark T1: Theorem 1 — U2PC atomicity violations vs PrAny."""

from benchmarks.conftest import emit
from repro.experiments.theorem1 import render_theorem1, run_theorem1


def test_bench_theorem1(once):
    result = once(run_theorem1)
    emit("T1 — Theorem 1 (U2PC impossibility)", render_theorem1(result))
    assert result.theorem_demonstrated
