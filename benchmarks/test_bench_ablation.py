"""Benchmark A1: the lazy-record vulnerability window."""

from benchmarks.conftest import emit
from repro.experiments.ablation import render_ablation, run_ablation


def test_bench_ablation(once):
    result = once(run_ablation)
    emit("A1 — vulnerability window", render_ablation(result))
    assert result.u2pc_window_never_closes_at_zero_delay
    assert result.prany_never_violates
