"""Benchmark T3: Theorem 3 — PrAny operational correctness stress."""

from benchmarks.conftest import emit
from repro.experiments.theorem3 import render_theorem3, run_theorem3


def test_bench_theorem3(once):
    result = once(run_theorem3)
    emit("T3 — Theorem 3 (PrAny correctness stress)", render_theorem3(result))
    assert result.theorem_demonstrated
