"""Benchmark C2: commit latency vs participant count."""

from benchmarks.conftest import emit
from repro.experiments.latency import latency_sweep, render_latency


def test_bench_latency_sweep(once):
    result = once(latency_sweep)
    emit("C2 — latency sweep", render_latency(result))
    # The ack-free paths must terminate the coordinator's wait early.
    prc = result.point("all-PrC", "commit", 2)
    prn = result.point("all-PrN", "commit", 2)
    assert prc.forget_latency < prn.forget_latency
