"""Benchmark C7: coordinator log vs basic 2PC."""

from benchmarks.conftest import emit
from repro.experiments.coordinator_log import render_cl, run_cl_experiment


def test_bench_cl(once):
    result = once(run_cl_experiment)
    emit("C7 — coordinator log", render_cl(result))
    assert result.all_correct
    assert result.cl_participants_force_nothing
    assert result.cl_recovery_pulls_redo
