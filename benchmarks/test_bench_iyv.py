"""Benchmark C5: IYV vs PrA (round trips vs forced writes)."""

from benchmarks.conftest import emit
from repro.experiments.iyv import render_iyv, run_iyv_experiment


def test_bench_iyv(once):
    result = once(run_iyv_experiment)
    emit("C5 — IYV vs PrA", render_iyv(result))
    assert result.all_correct
    assert result.iyv_always_decides_earlier
    assert result.pra_forces_grow_slower
