"""Benchmark C6: streaming throughput (also times the simulator itself)."""

from benchmarks.conftest import emit
from repro.experiments.throughput import (
    render_throughput,
    run_throughput_experiment,
)


def test_bench_throughput(once):
    result = once(run_throughput_experiment)
    emit("C6 — streaming throughput", render_throughput(result))
    assert result.all_correct
    assert result.prc_residency_lowest_on_commits
