"""Benchmark R1: §4.2 coordinator recovery scenarios."""

from benchmarks.conftest import emit
from repro.experiments.recovery import recovery_experiment, render_recovery


def test_bench_recovery(once):
    result = once(recovery_experiment)
    emit("R1 — coordinator recovery", render_recovery(result))
    assert result.all_converged
