"""Benchmark T2: Theorem 2 — C2PC unbounded retention vs PrAny."""

from benchmarks.conftest import emit
from repro.experiments.theorem2 import render_theorem2, run_theorem2


def test_bench_theorem2(once):
    result = once(run_theorem2)
    emit("T2 — Theorem 2 (C2PC retention growth)", render_theorem2(result))
    assert result.theorem_demonstrated
