"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's artifacts (figure,
theorem demonstration, or cost table) and prints the rendered result, so
``pytest benchmarks/ --benchmark-only -s`` reproduces EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def emit(title: str, rendered: str) -> None:
    """Print a rendered experiment artifact under a banner."""
    banner = f"\n{'#' * 72}\n# {title}\n{'#' * 72}"
    print(banner)
    print(rendered)


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The experiments are deterministic whole-system simulations — there
    is no point re-running them dozens of times for statistics; a single
    timed round measures the cost of regenerating the artifact.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
