"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` under
PEP 517; offline environments without ``wheel`` can fall back to the
legacy editable path through this file.
"""

from setuptools import setup

setup()
